"""Validation of the telemetry snapshot document (DESIGN.md §8).

Pure-Python structural validation — no external jsonschema dependency —
used by tests and by the CI smoke job::

    PYTHONPATH=src python -m repro.telemetry.schema snapshot.json

Exit status 0 when the document conforms; 1 with a pin-pointed path
otherwise.
"""

from __future__ import annotations

import json
import re
import sys
from typing import List, Optional

from repro.telemetry.export import SNAPSHOT_VERSION

_METRIC_TYPES = {"counter", "gauge", "histogram"}

#: Metric names are dotted lowercase identifiers: a subsystem prefix
#: (``net``, ``repl``, ``router``...) then one or more segments, each
#: starting with a letter.  The DESIGN.md §8.2 catalogue and this pattern
#: are the two places a new subsystem's names must clear.
_METRIC_NAME = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$")


class SchemaError(ValueError):
    """A snapshot document violating the documented shape."""

    def __init__(self, path: str, message: str) -> None:
        super().__init__(f"{path}: {message}")
        self.path = path


def _require(cond: bool, path: str, message: str) -> None:
    if not cond:
        raise SchemaError(path, message)


def _check_labels(labels: object, path: str) -> None:
    _require(isinstance(labels, dict), path, "labels must be an object")
    for k, v in labels.items():  # type: ignore[union-attr]
        _require(isinstance(k, str), f"{path}.{k}", "label names must be strings")
        _require(isinstance(v, str), f"{path}.{k}", "label values must be strings")


def _check_sample(sample: object, type_: str, path: str) -> None:
    _require(isinstance(sample, dict), path, "sample must be an object")
    _check_labels(sample.get("labels"), f"{path}.labels")  # type: ignore[union-attr]
    if type_ == "histogram":
        for key in ("count", "sum", "buckets"):
            _require(key in sample, f"{path}.{key}", "histogram sample field missing")  # type: ignore[operator]
        _require(isinstance(sample["count"], int), f"{path}.count", "must be an integer")  # type: ignore[index]
        _require(isinstance(sample["sum"], (int, float)), f"{path}.sum", "must be a number")  # type: ignore[index]
        buckets = sample["buckets"]  # type: ignore[index]
        _require(isinstance(buckets, dict), f"{path}.buckets", "must be an object")
        _require("+Inf" in buckets, f"{path}.buckets", "must include the +Inf bound")
        for le, count in buckets.items():
            _require(isinstance(count, int) and count >= 0,
                     f"{path}.buckets[{le}]", "bucket counts must be non-negative integers")
    else:
        _require("value" in sample, f"{path}.value", "sample value missing")  # type: ignore[operator]
        _require(isinstance(sample["value"], (int, float)), f"{path}.value", "must be a number")  # type: ignore[index]
        if type_ == "counter":
            _require(sample["value"] >= 0, f"{path}.value", "counters cannot be negative")  # type: ignore[index]


def _check_span(span: object, path: str) -> None:
    _require(isinstance(span, dict), path, "span must be an object")
    _require(isinstance(span.get("name"), str) and span["name"],  # type: ignore[union-attr, index]
             f"{path}.name", "span name must be a non-empty string")
    _require(isinstance(span.get("wall_seconds"), (int, float)) and span["wall_seconds"] >= 0,  # type: ignore[union-attr, index]
             f"{path}.wall_seconds", "must be a non-negative number")
    if "sim_seconds" in span:  # type: ignore[operator]
        _require(isinstance(span["sim_seconds"], (int, float)) and span["sim_seconds"] >= 0,  # type: ignore[index]
                 f"{path}.sim_seconds", "must be a non-negative number")
    for key in ("bytes_in", "bytes_out"):
        _require(isinstance(span.get(key), int) and span[key] >= 0,  # type: ignore[union-attr, index]
                 f"{path}.{key}", "must be a non-negative integer")
    children = span.get("children")  # type: ignore[union-attr]
    _require(isinstance(children, list), f"{path}.children", "must be an array")
    for i, child in enumerate(children):  # type: ignore[union-attr]
        _check_span(child, f"{path}.children[{i}]")


def validate_snapshot(doc: object) -> dict:
    """Validate one snapshot document; returns summary counts.

    Raises :class:`SchemaError` naming the offending path otherwise.
    """
    _require(isinstance(doc, dict), "$", "snapshot must be an object")
    _require(doc.get("version") == SNAPSHOT_VERSION,  # type: ignore[union-attr]
             "$.version", f"must be {SNAPSHOT_VERSION}")
    _require(isinstance(doc.get("enabled"), bool), "$.enabled", "must be a boolean")  # type: ignore[union-attr]
    _require(isinstance(doc.get("generated_at"), (int, float)),  # type: ignore[union-attr]
             "$.generated_at", "must be a number (epoch seconds)")
    metrics = doc.get("metrics")  # type: ignore[union-attr]
    _require(isinstance(metrics, list), "$.metrics", "must be an array")
    seen = set()
    samples = 0
    for i, metric in enumerate(metrics):  # type: ignore[union-attr]
        path = f"$.metrics[{i}]"
        _require(isinstance(metric, dict), path, "metric must be an object")
        name = metric.get("name")
        _require(isinstance(name, str) and bool(name), f"{path}.name",
                 "metric name must be a non-empty string")
        _require(_METRIC_NAME.match(name) is not None, f"{path}.name",
                 f"metric name {name!r} must be dotted lowercase "
                 "(subsystem.metric)")
        _require(name not in seen, f"{path}.name", f"duplicate metric {name!r}")
        seen.add(name)
        type_ = metric.get("type")
        _require(type_ in _METRIC_TYPES, f"{path}.type",
                 f"must be one of {sorted(_METRIC_TYPES)}")
        _require(isinstance(metric.get("help", ""), str), f"{path}.help", "must be a string")
        metric_samples = metric.get("samples")
        _require(isinstance(metric_samples, list), f"{path}.samples", "must be an array")
        for j, sample in enumerate(metric_samples):
            _check_sample(sample, type_, f"{path}.samples[{j}]")
            samples += 1
    traces = doc.get("traces")  # type: ignore[union-attr]
    _require(isinstance(traces, list), "$.traces", "must be an array")
    for i, span in enumerate(traces):
        _check_span(span, f"$.traces[{i}]")
    return {"metrics": len(metrics), "samples": samples, "traces": len(traces)}  # type: ignore[arg-type]


def validate_file(path: str) -> dict:
    """Validate a snapshot JSON file on disk."""
    with open(path) as fh:
        return validate_snapshot(json.load(fh))


def main(argv: Optional[List[str]] = None) -> int:
    argv = argv if argv is not None else sys.argv[1:]
    if len(argv) != 1:
        print("usage: python -m repro.telemetry.schema SNAPSHOT.json", file=sys.stderr)
        return 2
    try:
        summary = validate_file(argv[0])
    except (OSError, json.JSONDecodeError, SchemaError) as exc:
        print(f"invalid telemetry snapshot: {exc}", file=sys.stderr)
        return 1
    print(
        f"ok: {summary['metrics']} metrics, {summary['samples']} samples, "
        f"{summary['traces']} trace trees"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised by CI
    raise SystemExit(main())
