"""One wall-clock source for the whole process.

Run timestamps (``DebarVault.backup``), telemetry span wall times and any
future scheduling all read time from here instead of calling
:func:`time.time` at scattered call sites, so a test (or a simulated-clock
run) can redirect every consumer at once with :func:`set_time_source`.

Two notions of time are exposed:

``wall_now()``
    Epoch seconds — what gets *recorded* (run timestamps, snapshot
    ``generated_at``).
``monotonic()``
    Monotonic seconds — what gets *subtracted* (span durations), immune to
    wall-clock steps.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

_wall_source: Callable[[], float] = time.time
_mono_source: Callable[[], float] = time.perf_counter


def wall_now() -> float:
    """Current epoch time in seconds from the configured source."""
    return _wall_source()


def monotonic() -> float:
    """Current monotonic time in seconds from the configured source."""
    return _mono_source()


def set_time_source(
    wall: Optional[Callable[[], float]] = None,
    mono: Optional[Callable[[], float]] = None,
) -> None:
    """Redirect the process time source(s); ``None`` leaves one unchanged.

    A simulated-clock run can pass ``wall=lambda: sim_clock.now`` so run
    timestamps and trace spans advance with simulated time.
    """
    global _wall_source, _mono_source
    if wall is not None:
        _wall_source = wall
    if mono is not None:
        _mono_source = mono


def reset_time_source() -> None:
    """Restore the real :mod:`time`-backed sources."""
    global _wall_source, _mono_source
    _wall_source = time.time
    _mono_source = time.perf_counter
