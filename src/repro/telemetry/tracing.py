"""Pipeline tracing: nested spans over wall *and* simulated time.

A :func:`trace_span` wraps one pipeline phase::

    with trace_span("dedup2.sil", sim_clock=self.clock) as span:
        ...
        span.set_io(bytes_in=batch_bytes, bytes_out=0)

Spans nest into a tree rooted at each top-level phase (one ``backup`` span
with ``dedup1`` / ``dedup2`` / ``catalog`` children, the dedup-2 span with
``sil`` / ``store`` / ``siu`` children, ...).  Each span records:

* ``wall`` — monotonic wall seconds (via :mod:`repro.telemetry.clock`);
* ``sim`` — simulated seconds, when the phase runs against a
  :class:`repro.simdisk.SimClock` (anything with a ``.now`` attribute);
* ``bytes_in`` / ``bytes_out`` — payload crossing the phase boundary;
* free-form ``attrs`` set via :meth:`Span.annotate`.

Like the metrics registry, tracing is disabled by default: the global
tracer is a :class:`NullTracer` whose ``span`` hands back one shared no-op
span inside a reusable null context, so untraced runs allocate nothing.
"""

from __future__ import annotations

from contextlib import contextmanager, nullcontext
from typing import Dict, Iterator, List, Optional

from repro.telemetry.clock import monotonic


class Span:
    """One timed phase in the trace tree."""

    __slots__ = (
        "name", "t0", "t1", "sim_t0", "sim_t1",
        "bytes_in", "bytes_out", "attrs", "children",
    )

    def __init__(self, name: str, sim_clock=None) -> None:
        self.name = name
        self.t0 = monotonic()
        self.t1: Optional[float] = None
        self.sim_t0 = sim_clock.now if sim_clock is not None else None
        self.sim_t1: Optional[float] = None
        self.bytes_in = 0
        self.bytes_out = 0
        self.attrs: Dict[str, object] = {}
        self.children: List["Span"] = []

    # -- recording -----------------------------------------------------------------
    def set_io(self, bytes_in: Optional[int] = None, bytes_out: Optional[int] = None) -> None:
        if bytes_in is not None:
            self.bytes_in = int(bytes_in)
        if bytes_out is not None:
            self.bytes_out = int(bytes_out)

    def annotate(self, **attrs: object) -> None:
        self.attrs.update(attrs)

    def _close(self, sim_clock=None) -> None:
        self.t1 = monotonic()
        if sim_clock is not None:
            self.sim_t1 = sim_clock.now

    # -- readings ------------------------------------------------------------------
    @property
    def wall(self) -> float:
        """Wall seconds this span covered (0.0 while still open)."""
        return (self.t1 - self.t0) if self.t1 is not None else 0.0

    @property
    def sim(self) -> Optional[float]:
        """Simulated seconds covered, or ``None`` if no sim clock attached."""
        if self.sim_t0 is None or self.sim_t1 is None:
            return None
        return self.sim_t1 - self.sim_t0

    def child(self, name: str) -> Optional["Span"]:
        """First direct child with the given name."""
        for c in self.children:
            if c.name == name:
                return c
        return None

    def to_dict(self) -> dict:
        d: Dict[str, object] = {
            "name": self.name,
            "wall_seconds": self.wall,
            "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out,
        }
        if self.sim is not None:
            d["sim_seconds"] = self.sim
        if self.attrs:
            d["attrs"] = dict(self.attrs)
        d["children"] = [c.to_dict() for c in self.children]
        return d

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Span({self.name!r}, wall={self.wall:.6f}, children={len(self.children)})"


class NullSpan:
    """The shared span handed out while tracing is disabled."""

    __slots__ = ()
    name = "<disabled>"
    wall = 0.0
    sim = None
    bytes_in = 0
    bytes_out = 0
    children: List[Span] = []

    def set_io(self, bytes_in: Optional[int] = None, bytes_out: Optional[int] = None) -> None:
        pass

    def annotate(self, **attrs: object) -> None:
        pass


_NULL_SPAN = NullSpan()
_NULL_CONTEXT = nullcontext(_NULL_SPAN)


class Tracer:
    """Collects span trees; one open-span stack per tracer.

    The repository is single-threaded by design (the cluster *simulates*
    concurrency on clock lanes), so the stack is plain instance state.
    """

    enabled = True

    def __init__(self) -> None:
        self.roots: List[Span] = []
        self._stack: List[Span] = []

    @contextmanager
    def span(self, name: str, sim_clock=None, **attrs: object) -> Iterator[Span]:
        s = Span(name, sim_clock=sim_clock)
        if attrs:
            s.attrs.update(attrs)
        if self._stack:
            self._stack[-1].children.append(s)
        else:
            self.roots.append(s)
        self._stack.append(s)
        try:
            yield s
        finally:
            self._stack.pop()
            s._close(sim_clock=sim_clock)

    def reset(self) -> None:
        self.roots = []
        self._stack = []

    def last_root(self) -> Optional[Span]:
        return self.roots[-1] if self.roots else None

    def to_dict_list(self) -> List[dict]:
        return [s.to_dict() for s in self.roots]

    # -- rendering -----------------------------------------------------------------
    def render(self) -> str:
        """The span forest as an indented text tree (the ``repro trace``
        output)."""
        lines: List[str] = []
        for root in self.roots:
            self._render_span(root, lines, prefix="", is_last=True, is_root=True)
        return "\n".join(lines)

    def _render_span(self, span: Span, lines: List[str], prefix: str,
                     is_last: bool, is_root: bool = False) -> None:
        from repro.util import fmt_bytes

        if is_root:
            head, child_prefix = "", ""
        else:
            head = prefix + ("└─ " if is_last else "├─ ")
            child_prefix = prefix + ("   " if is_last else "│  ")
        cols = [f"wall {span.wall * 1e3:9.3f} ms"]
        if span.sim is not None:
            cols.append(f"sim {span.sim:10.4f} s")
        if span.bytes_in or span.bytes_out:
            cols.append(f"in {fmt_bytes(span.bytes_in)} / out {fmt_bytes(span.bytes_out)}")
        for k, v in span.attrs.items():
            cols.append(f"{k}={v}")
        lines.append(f"{head}{span.name:<{max(1, 40 - len(head))}} {'  '.join(cols)}")
        for i, child in enumerate(span.children):
            self._render_span(child, lines, child_prefix, i == len(span.children) - 1)


class NullTracer(Tracer):
    """The disabled tracer: no spans collected, no allocation per call."""

    enabled = False

    def span(self, name: str, sim_clock=None, **attrs: object):  # type: ignore[override]
        return _NULL_CONTEXT


_tracer: Tracer = NullTracer()


def get_tracer() -> Tracer:
    """The process-wide tracer (a :class:`NullTracer` until enabled)."""
    return _tracer


def set_tracer(tracer: Tracer) -> Tracer:
    """Swap the process-wide tracer; returns the new one."""
    global _tracer
    _tracer = tracer
    return tracer


def trace_span(name: str, sim_clock=None, **attrs: object):
    """Open a span on the process-wide tracer (no-op when disabled)."""
    return _tracer.span(name, sim_clock=sim_clock, **attrs)
