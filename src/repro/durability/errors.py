"""Typed media-fault errors shared across the storage stack.

These deliberately do **not** subclass :class:`~repro.system.vault.VaultError`
(an operational/layout problem): corruption and disk-full are distinct
conditions with their own CLI exit semantics, and keeping the hierarchy
separate lets ``repro.cli.main`` map each in exactly one place.
"""

from __future__ import annotations

from typing import Optional


class MediaError(Exception):
    """Base class for faults originating in the storage media."""


class CorruptionError(MediaError):
    """Bytes on disk do not match what was written.

    Carries enough context to pinpoint the damage: which artifact, which
    container, which fingerprint, and the byte offset of the bad record.
    """

    def __init__(
        self,
        message: str,
        *,
        artifact: Optional[str] = None,
        container_id: Optional[int] = None,
        fingerprint: Optional[bytes] = None,
        offset: Optional[int] = None,
    ) -> None:
        super().__init__(message)
        self.artifact = artifact
        self.container_id = container_id
        self.fingerprint = fingerprint
        self.offset = offset


class TornWriteError(CorruptionError):
    """A record was cut short mid-write (crash or short write)."""


class DiskFullError(MediaError):
    """An append hit ENOSPC; the operation aborted cleanly and can resume.

    ``stored`` (when set by dedup-2) maps fingerprints that *did* land in
    sealed containers before the error to their container IDs, so the
    caller can record them in the checking file and avoid double-storing
    on resume.
    """

    def __init__(self, message: str, *, artifact: Optional[str] = None) -> None:
        super().__init__(message)
        self.artifact = artifact
        self.stored: dict = {}
