"""Startup recovery for a vault: torn tails and interrupted dedup-2.

Opening a :class:`~repro.system.vault.DebarVault` runs a
:class:`RecoveryManager` pass before the vault accepts work:

1. **Torn-tail recovery** happened already as a side effect of opening the
   persistent chunk log (incomplete trailing frames truncated, corrupt
   interior records excluded from replay); the manager collects those
   numbers into the report.
2. **Interrupted dedup-2 replay**: a crash or ENOSPC abort between dedup-1
   and SIU leaves replayable state on disk — chunk-log records not yet
   consumed, and checking-file fingerprints stored in containers but never
   registered in the index (the Section 5.4 window).  The manager seeds
   the TPDS engine with both and runs ``dedup2(force_siu=True)``; the
   checking-file screen guarantees nothing is stored twice.

If the disk is *still* full, the replay is deferred (``deferred`` in the
report) rather than failing the open: the vault works read-only-ish until
space frees and the next open (or backup) completes the replay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.durability.errors import DiskFullError


@dataclass
class RecoveryReport:
    """What a startup recovery pass found and did."""

    torn_bytes_truncated: int = 0
    corrupt_log_records: int = 0
    quarantined_bytes: int = 0
    log_records_replayed: int = 0
    unregistered_replayed: int = 0
    containers_written: int = 0
    replayed: bool = False
    deferred: Optional[str] = None  #: why a needed replay did not run
    notes: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when the vault needed no recovery at all."""
        return not (
            self.torn_bytes_truncated
            or self.corrupt_log_records
            or self.quarantined_bytes
            or self.replayed
            or self.deferred
        )


class RecoveryManager:
    """Runs the open-time recovery sequence for one vault."""

    def __init__(self, vault) -> None:
        self.vault = vault

    def run(self) -> RecoveryReport:
        report = RecoveryReport()
        tpds = self.vault.tpds
        log = tpds.chunk_log

        report.torn_bytes_truncated = getattr(log, "recovered_torn_bytes", 0)
        report.corrupt_log_records = len(getattr(log, "corrupt_records", ()))
        report.quarantined_bytes = getattr(log, "quarantined_bytes", 0)
        if report.torn_bytes_truncated:
            report.notes.append(
                f"truncated {report.torn_bytes_truncated} torn trailing bytes from the chunk log"
            )
        if report.corrupt_log_records:
            report.notes.append(
                f"{report.corrupt_log_records} corrupt chunk-log records excluded from replay"
            )
        if report.quarantined_bytes:
            report.notes.append(
                f"quarantined {report.quarantined_bytes} unscannable chunk-log bytes"
            )

        pending = tpds.checking.pending()
        if not log and not pending:
            return report

        # Interrupted dedup-2: seed the engine with what the crash stranded.
        seen = set()
        undetermined = []
        for record in log._records:  # raw, no replay-telemetry tick
            if record.fingerprint not in seen:
                seen.add(record.fingerprint)
                undetermined.append(record.fingerprint)
        report.log_records_replayed = len(log)
        report.unregistered_replayed = len(pending)
        tpds._undetermined = undetermined + tpds._undetermined
        tpds._unregistered.update(pending)
        try:
            stats = tpds.dedup2(force_siu=True)
        except DiskFullError as exc:
            report.deferred = f"disk still full: {exc}"
            report.notes.append("dedup-2 replay deferred until space frees")
            return report
        report.containers_written = stats.containers_written
        report.replayed = True
        report.notes.append(
            f"replayed interrupted dedup-2: {report.log_records_replayed} log records, "
            f"{report.unregistered_replayed} unregistered fingerprints"
        )
        return report
