"""Fault-injectable filesystem shim under the persistent storage layers.

The storage stack never touches the filesystem directly for payload I/O;
it goes through an :class:`Fs` object offering a handful of primitives
(whole-file read/write, append, truncate, positioned read/write on an
open handle).  Production uses the passthrough :class:`LocalFs`; tests
swap in a :class:`FaultyFs` that injects the media faults an archival
store must survive — ENOSPC, EIO, short (torn) writes, bit flips — plus
an optional byte quota that turns a tmpdir into a "full disk".

:func:`io_retry` gives writes bounded retry with backoff for *transient*
errors (EIO/EAGAIN); ENOSPC is never retried — it propagates so dedup-2
can abort cleanly and resume once space frees.
"""

from __future__ import annotations

import errno
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Optional, Union

PathLike = Union[str, Path]

#: errnos worth retrying — transient media hiccups, not persistent states.
TRANSIENT_ERRNOS = frozenset({errno.EIO, errno.EAGAIN, errno.EINTR})


class LocalFs:
    """Passthrough filesystem primitives (the production shim)."""

    def read_file(self, path: PathLike) -> bytes:
        return Path(path).read_bytes()

    def write_file(self, path: PathLike, data: bytes) -> None:
        Path(path).write_bytes(data)

    def append_file(self, path: PathLike, data: bytes) -> None:
        with open(path, "ab") as fh:
            fh.write(data)

    def truncate(self, path: PathLike, size: int) -> None:
        with open(path, "r+b") as fh:
            fh.truncate(size)

    def unlink(self, path: PathLike) -> None:
        Path(path).unlink()

    def exists(self, path: PathLike) -> bool:
        return Path(path).exists()

    def file_size(self, path: PathLike) -> int:
        return os.stat(path).st_size

    def replace(self, src: PathLike, dst: PathLike) -> None:
        os.replace(src, dst)

    # positioned I/O on an already-open binary file object (the disk index)
    def pread(self, fh, offset: int, length: int) -> bytes:
        fh.seek(offset)
        return fh.read(length)

    def pwrite(self, fh, offset: int, data: bytes) -> None:
        fh.seek(offset)
        fh.write(data)


@dataclass
class FaultRule:
    """One injected fault.

    ``op`` is the shim method name (``"write_file"``, ``"pread"``, ... or
    ``"*"``); ``path_contains`` narrows by substring of the target path
    (empty matches all).  The rule skips its first ``after`` matching
    calls, then fires ``times`` times (``None`` = forever).

    Kinds: ``enospc`` (raise before writing), ``eio`` (raise before the
    operation), ``short_write`` (write a torn prefix, then raise EIO),
    ``bit_flip`` (XOR ``flip_mask`` into byte ``flip_offset`` of read
    results).
    """

    op: str
    kind: str
    path_contains: str = ""
    after: int = 0
    times: Optional[int] = 1
    flip_offset: int = 0
    flip_mask: int = 0x01
    fired: int = field(default=0, init=False)
    _skipped: int = field(default=0, init=False)

    def matches(self, op: str, path: str) -> bool:
        if self.op not in ("*", op):
            return False
        if self.path_contains and self.path_contains not in path:
            return False
        if self.times is not None and self.fired >= self.times:
            return False
        if self._skipped < self.after:
            self._skipped += 1
            return False
        return True


def _enospc(path: str) -> OSError:
    return OSError(errno.ENOSPC, os.strerror(errno.ENOSPC), path)


def _eio(path: str) -> OSError:
    return OSError(errno.EIO, os.strerror(errno.EIO), path)


class FaultyFs(LocalFs):
    """A :class:`LocalFs` that injects faults per a rule list and a quota.

    ``quota_bytes`` bounds the *net* bytes held by files written through
    the shim (``write_file``/``append_file``); exceeding it raises ENOSPC
    before any bytes land, and :meth:`unlink` gives the space back — so a
    test can fill the "disk", free something, and resume.  In-place
    ``pwrite`` (the pre-sized index file) is not charged.
    """

    def __init__(
        self, rules: Optional[List[FaultRule]] = None, *, quota_bytes: Optional[int] = None
    ) -> None:
        self.rules = list(rules or [])
        self.quota_bytes = quota_bytes
        self._charged: dict = {}  # path -> bytes charged against the quota
        self.faults_fired = 0

    def add_rule(self, rule: FaultRule) -> FaultRule:
        self.rules.append(rule)
        return rule

    @property
    def charged_bytes(self) -> int:
        return sum(self._charged.values())

    def _fault(self, op: str, path: str, kinds: tuple) -> Optional[FaultRule]:
        for rule in self.rules:
            if rule.kind in kinds and rule.matches(op, path):
                rule.fired += 1
                self.faults_fired += 1
                return rule
        return None

    def _charge(self, path: str, new_size: int) -> None:
        if self.quota_bytes is None:
            return
        total = self.charged_bytes - self._charged.get(path, 0) + new_size
        if total > self.quota_bytes:
            raise _enospc(path)
        self._charged[path] = new_size

    # -- write side -----------------------------------------------------------
    def write_file(self, path: PathLike, data: bytes) -> None:
        spath = str(path)
        if self._fault("write_file", spath, ("enospc",)):
            raise _enospc(spath)
        if self._fault("write_file", spath, ("eio",)):
            raise _eio(spath)
        self._charge(spath, len(data))
        rule = self._fault("write_file", spath, ("short_write",))
        if rule:
            super().write_file(path, data[: len(data) // 2])
            raise _eio(spath)
        super().write_file(path, data)

    def append_file(self, path: PathLike, data: bytes) -> None:
        spath = str(path)
        if self._fault("append_file", spath, ("enospc",)):
            raise _enospc(spath)
        if self._fault("append_file", spath, ("eio",)):
            raise _eio(spath)
        self._charge(spath, self._charged.get(spath, 0) + len(data))
        rule = self._fault("append_file", spath, ("short_write",))
        if rule:
            super().append_file(path, data[: len(data) // 2])
            raise _eio(spath)
        super().append_file(path, data)

    def truncate(self, path: PathLike, size: int) -> None:
        super().truncate(path, size)
        if str(path) in self._charged:
            self._charged[str(path)] = min(self._charged[str(path)], size)

    def unlink(self, path: PathLike) -> None:
        super().unlink(path)
        self._charged.pop(str(path), None)

    def replace(self, src: PathLike, dst: PathLike) -> None:
        super().replace(src, dst)
        if str(src) in self._charged:
            self._charged[str(dst)] = self._charged.pop(str(src))

    def pwrite(self, fh, offset: int, data: bytes) -> None:
        spath = getattr(fh, "name", "")
        if self._fault("pwrite", str(spath), ("eio",)):
            raise _eio(str(spath))
        super().pwrite(fh, offset, data)

    # -- read side ------------------------------------------------------------
    def _maybe_flip(self, op: str, path: str, data: bytes) -> bytes:
        out = data
        while True:
            rule = self._fault(op, path, ("bit_flip",))
            if rule is None:
                return out
            if out:
                buf = bytearray(out)
                buf[rule.flip_offset % len(buf)] ^= rule.flip_mask
                out = bytes(buf)

    def read_file(self, path: PathLike) -> bytes:
        spath = str(path)
        if self._fault("read_file", spath, ("eio",)):
            raise _eio(spath)
        return self._maybe_flip("read_file", spath, super().read_file(path))

    def pread(self, fh, offset: int, length: int) -> bytes:
        spath = str(getattr(fh, "name", ""))
        if self._fault("pread", spath, ("eio",)):
            raise _eio(spath)
        return self._maybe_flip("pread", spath, super().pread(fh, offset, length))


def flip_byte_on_disk(path: PathLike, offset: int, mask: int = 0x01) -> None:
    """Flip bits of one byte of a file in place (bit-rot injection helper)."""
    with open(path, "r+b") as fh:
        fh.seek(offset)
        byte = fh.read(1)
        fh.seek(offset)
        fh.write(bytes([byte[0] ^ mask]))


def io_retry(
    fn: Callable[[], object],
    *,
    attempts: int = 4,
    base_delay: float = 0.01,
    sleep: Callable[[float], None] = time.sleep,
    on_retry: Optional[Callable[[], None]] = None,
):
    """Run ``fn``, retrying transient OSErrors with exponential backoff.

    Only :data:`TRANSIENT_ERRNOS` are retried; ENOSPC and everything else
    propagate immediately.  ``on_retry`` fires once per retry (telemetry
    hook for the ``io.retries`` counter).
    """
    delay = base_delay
    for attempt in range(attempts):
        try:
            return fn()
        except OSError as exc:
            if exc.errno not in TRANSIENT_ERRNOS or attempt == attempts - 1:
                raise
            if on_retry is not None:
                on_retry()
            sleep(delay)
            delay *= 2
    raise AssertionError("unreachable")
