"""Background media scrub: sweep, quarantine and repair bit rot.

The scrubber walks every persistent artifact of a vault — container files,
the chunk log, the disk-index buckets — verifying checksums the write path
stamped (see :mod:`repro.durability.framing`), and classifies damage:

* **repairable** — a replacement payload exists: the chunk log still holds
  the ``<F, D(F)>`` group, or a cluster peer (anything with
  ``read_chunk(fp)``) serves the chunk.  Replacements are SHA-1-verified
  against the fingerprint before they touch disk, so a scrub can never
  launder corruption;
* **unrepairable** — no source has intact bytes.  The damage is reported,
  quarantined where that preserves forensics, and every catalogued file
  referencing the lost chunk is marked *degraded* in the vault catalog so
  restores and operators know exactly what was hurt.

The sweep is **incremental**: a JSON cursor in the vault root records how
far the last pass got, so a ``max_records`` budget (or a crash) resumes
where it stopped instead of re-reading the whole repository; and **rate
limited**: an optional bytes-per-second cap sleeps between reads so a
scrub can run beside production backups without starving them.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.disk_index import Bucket, IndexFullError, unpack_bucket
from repro.core.fingerprint import Fingerprint
from repro.durability.errors import CorruptionError
from repro.storage.container import ChunkRecord, Container

#: Cursor file name inside the vault root.
CURSOR_FILE = "scrub.cursor"

#: Sweep phases, in order.
PHASE_CONTAINERS = "containers"
PHASE_CHUNK_LOG = "chunk-log"
PHASE_INDEX = "index"
_PHASES = (PHASE_CONTAINERS, PHASE_CHUNK_LOG, PHASE_INDEX)


def _sha1(data: bytes) -> bytes:
    return hashlib.sha1(data).digest()


@dataclass(frozen=True)
class ScrubFinding:
    """One piece of damage the sweep met."""

    artifact: str               #: "container" | "chunk log" | "index"
    detail: str
    container_id: Optional[int] = None
    fingerprint: Optional[Fingerprint] = None
    offset: Optional[int] = None    #: byte offset inside the artifact
    repaired: bool = False
    action: str = "reported"        #: what the scrubber did about it

    def to_json(self) -> dict:
        return {
            "artifact": self.artifact,
            "detail": self.detail,
            "container_id": self.container_id,
            "fingerprint": self.fingerprint.hex() if self.fingerprint else None,
            "offset": self.offset,
            "repaired": self.repaired,
            "action": self.action,
        }


@dataclass
class ScrubReport:
    """Outcome of one scrub pass (possibly partial, under a budget)."""

    records_checked: int = 0
    corrupt_found: int = 0
    repaired: int = 0
    containers_scanned: int = 0
    log_records_scanned: int = 0
    buckets_scanned: int = 0
    entries_reinserted: int = 0
    bytes_read: int = 0
    degraded_files: List[str] = field(default_factory=list)
    findings: List[ScrubFinding] = field(default_factory=list)
    partial: bool = False       #: budget ran out; the cursor marks the spot
    resumed: bool = False       #: pass started from a saved cursor
    notes: List[str] = field(default_factory=list)

    @property
    def unrepaired(self) -> int:
        """Damage found that is still on disk after this pass."""
        return self.corrupt_found - self.repaired

    @property
    def clean(self) -> bool:
        return self.corrupt_found == 0

    def add(self, finding: ScrubFinding) -> None:
        self.findings.append(finding)

    def summary(self) -> str:
        verdict = (
            "CLEAN" if self.clean
            else "REPAIRED" if self.unrepaired == 0
            else "DAMAGED"
        )
        # A resumed pass only covers the tail the cursor pointed at, so a
        # CLEAN verdict must not read as "the whole vault is clean".
        scope = (
            "partial pass" if self.partial
            else "resumed pass" if self.resumed
            else "full pass"
        )
        lines = [
            f"scrub {verdict} ({scope}): {self.records_checked} records checked, "
            f"{self.corrupt_found} corrupt, {self.repaired} repaired"
        ]
        lines.append(
            f"  containers {self.containers_scanned}, chunk-log records "
            f"{self.log_records_scanned}, index buckets {self.buckets_scanned}, "
            f"{self.bytes_read} bytes read"
        )
        if self.entries_reinserted:
            lines.append(f"  index entries re-inserted: {self.entries_reinserted}")
        for finding in self.findings:
            mark = "repaired" if finding.repaired else "UNREPAIRED"
            lines.append(f"  [{mark}] {finding.artifact}: {finding.detail} "
                         f"({finding.action})")
        for path in self.degraded_files:
            lines.append(f"  degraded: {path}")
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "records_checked": self.records_checked,
            "corrupt_found": self.corrupt_found,
            "repaired": self.repaired,
            "unrepaired": self.unrepaired,
            "containers_scanned": self.containers_scanned,
            "log_records_scanned": self.log_records_scanned,
            "buckets_scanned": self.buckets_scanned,
            "entries_reinserted": self.entries_reinserted,
            "bytes_read": self.bytes_read,
            "partial": self.partial,
            "resumed": self.resumed,
            "degraded_files": self.degraded_files,
            "findings": [f.to_json() for f in self.findings],
            "notes": self.notes,
        }


class _Budget:
    """Record budget + read-rate throttle shared across phases."""

    def __init__(
        self,
        max_records: Optional[int],
        rate_bps: Optional[float],
        sleep: Callable[[float], None],
    ) -> None:
        self.max_records = max_records
        self.rate_bps = rate_bps
        self.sleep = sleep
        self.records = 0
        self._debt = 0.0

    def exhausted(self) -> bool:
        return self.max_records is not None and self.records >= self.max_records

    def charge_records(self, n: int) -> None:
        self.records += n

    def charge_bytes(self, n: int) -> None:
        if not self.rate_bps:
            return
        self._debt += n
        # Sleep in ~100 ms slices so the cap holds without jittery micro-naps.
        if self._debt >= self.rate_bps * 0.1:
            self.sleep(self._debt / self.rate_bps)
            self._debt = 0.0


class Scrubber:
    """Sweeps one :class:`~repro.system.vault.DebarVault` for media faults.

    Parameters
    ----------
    vault:
        The open vault to scrub.
    peers:
        Repair sources beyond the local chunk log: objects exposing
        ``read_chunk(fp) -> bytes`` (e.g.
        :class:`repro.net.client.RemoteChunkReader` pointed at a replica
        vault).  Payloads are fingerprint-verified before use.
    rate_bps:
        Optional read-rate cap in bytes per second.
    max_records:
        Optional per-pass record budget; an exhausted budget saves the
        cursor and returns a ``partial`` report that the next pass resumes.
    sleep:
        Injectable sleep for the rate limiter (tests pass a stub).
    reset_cursor:
        Drop any saved cursor and start the sweep from the beginning.
    """

    def __init__(
        self,
        vault,
        peers: Sequence[object] = (),
        rate_bps: Optional[float] = None,
        max_records: Optional[int] = None,
        sleep: Callable[[float], None] = time.sleep,
        reset_cursor: bool = False,
    ) -> None:
        self.vault = vault
        self.peers = list(peers)
        self.fs = vault.fs
        self._budget = _Budget(max_records, rate_bps, sleep)
        self._cursor_path = vault.root / CURSOR_FILE
        if reset_cursor and self.fs.exists(self._cursor_path):
            self.fs.unlink(self._cursor_path)
        registry = vault.telemetry
        self._t_checked = registry.counter(
            "scrub.records_checked", "records checked by the scrubber"
        ).labels()
        self._t_corrupt = registry.counter(
            "scrub.corrupt_found", "corrupt records the scrubber found"
        ).labels()
        self._t_repaired = registry.counter(
            "scrub.repaired", "corrupt records the scrubber repaired"
        ).labels()

    # -- cursor ---------------------------------------------------------------
    def _load_cursor(self) -> dict:
        if not self.fs.exists(self._cursor_path):
            return {"phase": PHASE_CONTAINERS, "position": 0}
        try:
            cursor = json.loads(self.fs.read_file(self._cursor_path))
            if cursor.get("phase") in _PHASES:
                return {"phase": cursor["phase"], "position": int(cursor.get("position", 0))}
        except (ValueError, OSError):
            pass
        return {"phase": PHASE_CONTAINERS, "position": 0}

    def _save_cursor(self, phase: str, position: int) -> None:
        self.fs.write_file(
            self._cursor_path,
            json.dumps({"phase": phase, "position": position}).encode(),
        )

    def _drop_cursor(self) -> None:
        if self.fs.exists(self._cursor_path):
            self.fs.unlink(self._cursor_path)

    # -- the sweep ------------------------------------------------------------
    def run(self, repair: bool = False) -> ScrubReport:
        """One scrub pass: containers, then the chunk log, then the index.

        With ``repair`` the scrubber rewrites what it can heal; without it
        the pass is strictly read-only (beyond cursor bookkeeping).
        """
        report = ScrubReport()
        cursor = self._load_cursor()
        report.resumed = (
            cursor["phase"] != PHASE_CONTAINERS or cursor["position"] > 0
        )
        start_phase = _PHASES.index(cursor["phase"])
        phases = (
            (PHASE_CONTAINERS, self._scrub_containers),
            (PHASE_CHUNK_LOG, self._scrub_chunk_log),
            (PHASE_INDEX, self._scrub_index),
        )
        for i, (name, fn) in enumerate(phases):
            if i < start_phase:
                continue
            position = cursor["position"] if i == start_phase else 0
            done = fn(report, repair, position)
            if done is not None:  # budget ran out inside this phase
                self._save_cursor(name, done)
                report.partial = True
                report.notes.append(
                    f"record budget exhausted in phase {name!r}; cursor saved"
                )
                break
        else:
            self._drop_cursor()
        self._t_checked.inc(report.records_checked)
        self._t_corrupt.inc(report.corrupt_found)
        self._t_repaired.inc(report.repaired)
        return report

    # -- phase 1: containers --------------------------------------------------
    def _scrub_containers(
        self, report: ScrubReport, repair: bool, position: int
    ) -> Optional[int]:
        repo = self.vault.repository
        ids = [cid for cid in repo.container_ids() if cid >= position]
        for cid in ids:
            if self._budget.exhausted():
                return cid
            try:
                tier = repo.tier_of(cid)
            except KeyError:
                continue  # removed since the id list was taken (gc race)
            try:
                if tier == "cold":
                    container, faults, nbytes, nrecords = (
                        self._check_cold_container(repo, cid)
                    )
                else:
                    container, faults, nbytes, nrecords = (
                        self._check_hot_container(repo, cid)
                    )
            except KeyError:
                continue  # gc race after the tier check
            except CorruptionError as exc:
                report.containers_scanned += 1
                report.corrupt_found += 1
                self._handle_unparseable_container(report, repair, cid, exc)
                continue
            report.containers_scanned += 1
            report.bytes_read += nbytes
            self._budget.charge_bytes(nbytes)
            report.records_checked += nrecords
            self._budget.charge_records(nrecords)
            if not faults:
                continue
            report.corrupt_found += len(faults)
            if repair:
                if container is None:
                    container = repo.fetch(cid)
                self._repair_payloads(report, cid, container, faults)
            else:
                for fault in faults:
                    report.add(ScrubFinding(
                        "container",
                        f"container {cid}: {fault.reason} for "
                        f"{fault.fingerprint.hex()[:12]}",
                        container_id=cid, fingerprint=fault.fingerprint,
                        offset=fault.file_offset,
                    ))
        return None

    def _check_hot_container(self, repo, cid: int):
        """Full-image check of a hot container (one local file read)."""
        blob = repo.read_image(cid)
        container = Container.deserialize(cid, blob, capacity=repo.container_bytes)
        return (
            container, container.verify_payloads(), len(blob),
            len(container.records),
        )

    def _check_cold_container(self, repo, cid: int):
        """Ranged check of a cold container — metadata from a bounded
        prefix GET, payloads from coalesced multi-range GETs; the image
        (and its zero padding in particular) is never downloaded whole.
        The container object is fetched lazily, only if repair needs it.
        """
        faults, nbytes = repo.verify_cold_payloads(cid)
        records, _, _ = repo.fetch_meta(cid)
        return None, faults, nbytes, len(records)

    def _peer_name(self, position: int, peer: object) -> str:
        name = getattr(peer, "name", None)
        return str(name) if name else f"peer#{position + 1}"

    def _fetch_good_payload(
        self, fp: Fingerprint, size: Optional[int]
    ) -> Optional[tuple]:
        """A fingerprint-verified replacement as ``(payload, source)``, or
        ``None``.  ``source`` names who healed the record — the repair
        report carries it so operators know which copy saved the data.

        Sources, in order: the local chunk log (the record may still be
        sitting there from the crashed run that stored it), then each
        cluster peer.
        """
        for record in self.vault.tpds.chunk_log._records:
            if record.fingerprint == fp and record.data is not None:
                if _sha1(record.data) == fp:
                    return record.data, "local chunk log"
        for position, peer in enumerate(self.peers):
            try:
                data = peer.read_chunk(fp)
            except Exception:
                continue  # miss, peer down, protocol error: try the next one
            if _sha1(data) == fp and (size is None or len(data) == size):
                return data, self._peer_name(position, peer)
        return None

    def _repair_payloads(
        self, report: ScrubReport, cid: int, container: Container, faults
    ) -> None:
        data = bytearray(container.data)
        records: List[ChunkRecord] = list(container.records)
        fixed = 0
        for fault in faults:
            rec = container.record_for(fault.fingerprint)
            found = self._fetch_good_payload(rec.fingerprint, rec.size)
            if found is None:
                report.add(ScrubFinding(
                    "container",
                    f"container {cid}: {fault.reason} for "
                    f"{rec.fingerprint.hex()[:12]}, no intact source",
                    container_id=cid, fingerprint=rec.fingerprint,
                    offset=fault.file_offset, action="marked degraded",
                ))
                self._mark_degraded(report, rec.fingerprint)
                continue
            replacement, source = found
            data[rec.offset : rec.offset + rec.size] = replacement
            # Recompute the stored CRC from the verified payload (the rot
            # may have been in the CRC itself); unrepaired records keep
            # their original CRC so the damage stays visible to the next pass.
            i = records.index(rec)
            records[i] = ChunkRecord(rec.fingerprint, rec.size, rec.offset)
            fixed += 1
            report.add(ScrubFinding(
                "container",
                f"container {cid}: {fault.reason} for {rec.fingerprint.hex()[:12]}",
                container_id=cid, fingerprint=rec.fingerprint,
                offset=fault.file_offset, repaired=True,
                action=f"payload rewritten from {source}",
            ))
        if fixed:
            healed = Container(cid, records, bytes(data), container.capacity)
            # write_image heals in place on whichever tier holds the
            # container and invalidates the read/metadata caches.
            self.vault.repository.write_image(cid, healed.serialize())
            report.repaired += fixed

    def _handle_unparseable_container(
        self, report: ScrubReport, repair: bool, cid: int, exc: CorruptionError
    ) -> None:
        """Metadata section lost: rebuild from the index + repair sources.

        The index (and checking file) say which fingerprints the container
        held; if every one has an intact source, the container is rebuilt
        in place.  Anything missing is removed from the index and its
        catalogued files marked degraded; the damaged image moves to a
        ``.quarantine`` sibling either way, never silently overwritten
        until the rebuilt image is ready.
        """
        if not repair:
            report.add(ScrubFinding(
                "container", f"container {cid}: {exc}", container_id=cid,
                offset=exc.offset,
            ))
            return
        index = self.vault.tpds.index
        checking = self.vault.tpds.checking
        try:
            members = [fp for fp, c in index.iter_entries() if c == cid]
        except CorruptionError:
            # The index itself has rotted buckets (phase 3 will handle
            # them); the checking file is all we can trust right now.
            members = []
            report.notes.append(
                f"container {cid} rebuild: index unreadable, "
                "membership limited to the checking file"
            )
        members += [fp for fp, c in checking.pending().items()
                    if c == cid and fp not in members]
        recovered: Dict[Fingerprint, bytes] = {}
        sources: List[str] = []
        lost: List[Fingerprint] = []
        for fp in members:
            found = self._fetch_good_payload(fp, None)
            if found is None:
                lost.append(fp)
            else:
                recovered[fp], source = found
                if source not in sources:
                    sources.append(source)
        self.vault.repository.quarantine(cid)
        if recovered:
            records: List[ChunkRecord] = []
            blob = bytearray()
            for fp, payload in recovered.items():
                records.append(ChunkRecord(fp, len(payload), len(blob)))
                blob.extend(payload)
            rebuilt = Container(cid, records, bytes(blob), self.vault.container_bytes)
            self.vault.repository.write_image(cid, rebuilt.serialize())
        for fp in lost:
            index.delete(fp)
            self._mark_degraded(report, fp)
        if not lost:
            report.repaired += 1
            report.add(ScrubFinding(
                "container", f"container {cid}: {exc}", container_id=cid,
                offset=exc.offset, repaired=True,
                action=f"rebuilt from {len(recovered)} recovered chunks "
                f"(sources: {', '.join(sources) or 'none'}), "
                "damaged image quarantined",
            ))
        else:
            report.add(ScrubFinding(
                "container",
                f"container {cid}: {exc}; {len(lost)} of "
                f"{len(members)} chunks unrecoverable",
                container_id=cid, offset=exc.offset,
                action="quarantined, lost chunks dropped from index, "
                "affected files marked degraded",
            ))

    # -- phase 2: chunk log ---------------------------------------------------
    def _scrub_chunk_log(
        self, report: ScrubReport, repair: bool, position: int
    ) -> Optional[int]:
        log = self.vault.tpds.chunk_log
        corrupt = list(getattr(log, "corrupt_records", ()))
        intact = len(getattr(log, "_records", ()))
        report.log_records_scanned = intact + len(corrupt)
        report.records_checked += report.log_records_scanned
        self._budget.charge_records(report.log_records_scanned)
        report.bytes_read += getattr(log, "size_bytes", 0)
        quarantined = getattr(log, "quarantined_bytes", 0)
        if quarantined:
            report.notes.append(
                f"{quarantined} unscannable chunk-log bytes already quarantined at open"
            )
        if not corrupt:
            return None
        report.corrupt_found += len(corrupt)
        for offset, _payload in corrupt:
            report.add(ScrubFinding(
                "chunk log",
                f"record frame at offset {offset} failed its CRC",
                offset=offset,
                repaired=repair,
                action=(
                    "dropped on rewrite, raw payload quarantined" if repair
                    else "excluded from replay"
                ),
            ))
        if repair and hasattr(log, "rewrite_intact"):
            dropped = log.rewrite_intact()
            report.repaired += dropped
            report.notes.append(
                f"chunk log rewritten without {dropped} corrupt frames"
            )
        return None

    # -- phase 3: index buckets -----------------------------------------------
    def _scrub_index(
        self, report: ScrubReport, repair: bool, position: int
    ) -> Optional[int]:
        index = self.vault.tpds.index
        store = index.store
        bad: List[int] = []
        for k in range(position, index.n_buckets):
            if self._budget.exhausted():
                if bad and repair:
                    self._repair_buckets(report, bad)
                return k
            blob = store.read(k * index.bucket_bytes, index.bucket_bytes)
            report.bytes_read += len(blob)
            self._budget.charge_bytes(len(blob))
            report.buckets_scanned += 1
            report.records_checked += 1
            self._budget.charge_records(1)
            try:
                unpack_bucket(blob)
            except CorruptionError:
                report.corrupt_found += 1
                bad.append(k)
                report.add(ScrubFinding(
                    "index",
                    f"bucket {k} failed its CRC",
                    offset=k * index.bucket_bytes,
                    repaired=repair,
                    action=(
                        "zeroed and re-filled from container metadata" if repair
                        else "reported (entries unreadable)"
                    ),
                ))
        if bad and repair:
            self._repair_buckets(report, bad)
        return None

    def _repair_buckets(self, report: ScrubReport, bad: List[int]) -> None:
        """Zero the damaged buckets, then re-insert every stored fingerprint
        the index no longer resolves (Section 4.1's reconstruction, scoped
        to the damage instead of the whole index)."""
        index = self.vault.tpds.index
        checking = self.vault.tpds.checking
        for k in bad:
            index.write_bucket(Bucket(k, [], index.bucket_capacity))
        reinserted = 0
        for fp, cid in self.vault.repository.iter_index_entries():
            if fp in checking:
                continue  # pre-SIU window: the checking file covers it
            try:
                if index.lookup(fp) is None:
                    index.insert(fp, cid)
                    reinserted += 1
            except IndexFullError:
                report.notes.append(
                    "index full during bucket repair; run recover-index "
                    "after scaling"
                )
                break
            except CorruptionError:
                # Home bucket still rotted (budget stopped the scan before
                # reaching it); the next pass will zero and refill it.
                continue
        report.repaired += len(bad)
        report.entries_reinserted += reinserted
        self.vault._flush_index()

    # -- degraded-file bookkeeping --------------------------------------------
    def _mark_degraded(self, report: ScrubReport, fp: Fingerprint) -> None:
        """Flag every catalogued file referencing a lost chunk."""
        hex_fp = fp.hex()
        changed = False
        for run in self.vault._catalog["runs"]:
            for f in run["files"]:
                if hex_fp in f["fingerprints"] and not f.get("degraded"):
                    f["degraded"] = True
                    report.degraded_files.append(
                        f"run {run['run_id']}: {f['path']}"
                    )
                    changed = True
        if changed:
            self.vault._save_catalog()
