"""Media-fault durability: checksummed framing, scrub/repair, fault shims.

This package makes every persistent DEBAR artifact self-verifying
(CRC32C record frames + generation-stamped superblocks), sweeps them for
rot (:class:`Scrubber`), and lets tests inject the faults real disks
produce (:class:`FaultyFs`).
"""

from repro.durability.crc import crc32c
from repro.durability.errors import (
    CorruptionError,
    DiskFullError,
    MediaError,
    TornWriteError,
)
from repro.durability.fsshim import FaultRule, FaultyFs, LocalFs, flip_byte_on_disk, io_retry

__all__ = [
    "crc32c",
    "CorruptionError",
    "DiskFullError",
    "MediaError",
    "TornWriteError",
    "FaultRule",
    "FaultyFs",
    "LocalFs",
    "flip_byte_on_disk",
    "io_retry",
    "Scrubber",
    "ScrubFinding",
    "ScrubReport",
    "RecoveryManager",
    "RecoveryReport",
]


def __getattr__(name):  # lazy: scrubber/recovery pull in storage + net layers
    if name in ("Scrubber", "ScrubFinding", "ScrubReport"):
        from repro.durability import scrubber

        return getattr(scrubber, name)
    if name in ("RecoveryManager", "RecoveryReport"):
        from repro.durability import recovery

        return getattr(recovery, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
