"""CRC32C (Castagnoli) — the record checksum of the durability layer.

CRC32C is the framing checksum used by iSCSI, ext4 and Btrfs; unlike
``zlib.crc32`` (CRC-32/ISO-HDLC) it has hardware support on modern CPUs
and better burst-error detection for storage payloads.  CPython ships no
CRC32C, so this module implements the reflected polynomial ``0x1EDC6F41``
with a slicing-by-8 table walk (8 bytes per loop iteration); if a native
``crc32c`` extension module happens to be importable it is preferred.

The checksum value is the standard one: ``crc32c(b"123456789") ==
0xE3069283``.
"""

from __future__ import annotations

from typing import List

_POLY = 0x82F63B78  # reflected 0x1EDC6F41


def _build_tables() -> List[List[int]]:
    base = []
    for i in range(256):
        crc = i
        for _ in range(8):
            crc = (crc >> 1) ^ (_POLY if crc & 1 else 0)
        base.append(crc)
    tables = [base]
    for _ in range(7):
        prev = tables[-1]
        tables.append([base[v & 0xFF] ^ (v >> 8) for v in prev])
    return tables


_T0, _T1, _T2, _T3, _T4, _T5, _T6, _T7 = _build_tables()


def _crc32c_py(data: bytes, value: int = 0) -> int:
    """Pure-python slicing-by-8 CRC32C."""
    crc = (value & 0xFFFFFFFF) ^ 0xFFFFFFFF
    mv = memoryview(data).cast("B") if not isinstance(data, bytes) else data
    n = len(mv)
    i = 0
    end8 = n - (n & 7)
    while i < end8:
        crc ^= mv[i] | (mv[i + 1] << 8) | (mv[i + 2] << 16) | (mv[i + 3] << 24)
        crc = (
            _T7[crc & 0xFF]
            ^ _T6[(crc >> 8) & 0xFF]
            ^ _T5[(crc >> 16) & 0xFF]
            ^ _T4[(crc >> 24) & 0xFF]
            ^ _T3[mv[i + 4]]
            ^ _T2[mv[i + 5]]
            ^ _T1[mv[i + 6]]
            ^ _T0[mv[i + 7]]
        )
        i += 8
    while i < n:
        crc = (crc >> 8) ^ _T0[(crc ^ mv[i]) & 0xFF]
        i += 1
    return crc ^ 0xFFFFFFFF


try:  # pragma: no cover - depends on the host environment
    from crc32c import crc32c as _crc32c_native  # type: ignore

    def crc32c(data: bytes, value: int = 0) -> int:
        """CRC32C of ``data`` (native extension)."""
        return _crc32c_native(data, value)

except ImportError:
    crc32c = _crc32c_py
