"""Checksummed on-disk framing: superblocks and CRC32C record frames.

Every persistent artifact (container files, the chunk log, the disk-index
sidecar) opens with a **superblock** and carries its records inside **CRC
frames**, so a reader can always tell *written-and-intact* from
*torn-mid-write* from *rotted-in-place*:

Superblock (26 bytes + payload)::

    magic      4s   b"DBSB"
    version    u16
    kind       4s   artifact class (b"CTR ", b"CLOG", b"IDX ")
    generation u64  monotonically increasing stamp per artifact
    paylen     u32  length of the kind-specific payload that follows
    payload    ...  kind-specific fields
    crc        u32  CRC32C of everything above

Record frame (12 bytes + payload)::

    magic      u32  0x4442_5245 ("DBRE")
    length     u32  payload length
    crc        u32  CRC32C of the payload
    payload    ...

Torn-tail semantics: a frame whose header or payload runs past EOF is a
*torn* record (crash mid-append) — recovery truncates back to the last
intact frame.  A complete frame whose CRC mismatches is a *corrupt*
record (bit rot) — it is quarantined, never silently truncated, because
valid data may follow it.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

from repro.durability.crc import crc32c
from repro.durability.errors import CorruptionError, TornWriteError

SUPERBLOCK_MAGIC = b"DBSB"
SUPERBLOCK_VERSION = 1

#: Artifact kinds stamped into superblocks.
KIND_CONTAINER = b"CTR "
KIND_CHUNK_LOG = b"CLOG"
KIND_INDEX = b"IDX "

_SB_HEADER = struct.Struct("<4sH4sQI")
_CRC = struct.Struct("<I")

RECORD_MAGIC = 0x44425245  # "DBRE"
_FRAME_HEADER = struct.Struct("<III")

#: Fixed overhead of a record frame around its payload.
FRAME_OVERHEAD = _FRAME_HEADER.size


@dataclass(frozen=True)
class Superblock:
    """A parsed artifact superblock."""

    kind: bytes
    generation: int
    payload: bytes = b""
    version: int = SUPERBLOCK_VERSION

    def pack(self) -> bytes:
        head = _SB_HEADER.pack(
            SUPERBLOCK_MAGIC, self.version, self.kind, self.generation, len(self.payload)
        )
        body = head + self.payload
        return body + _CRC.pack(crc32c(body))

    @property
    def size(self) -> int:
        return _SB_HEADER.size + len(self.payload) + _CRC.size


def superblock_size(payload_len: int) -> int:
    """On-disk size of a superblock carrying ``payload_len`` payload bytes."""
    return _SB_HEADER.size + payload_len + _CRC.size


def has_superblock(blob: bytes) -> bool:
    """Cheap probe: does ``blob`` start with the superblock magic?"""
    return blob[:4] == SUPERBLOCK_MAGIC


def unpack_superblock(blob: bytes, *, artifact: str = "artifact") -> Tuple[Superblock, int]:
    """Parse and verify a superblock at the start of ``blob``.

    Returns ``(superblock, offset past it)``.  Raises
    :class:`TornWriteError` when the blob ends inside the superblock and
    :class:`CorruptionError` on magic/version/CRC damage.
    """
    if len(blob) < _SB_HEADER.size + _CRC.size:
        raise TornWriteError(
            f"{artifact}: {len(blob)} bytes is too short for a superblock",
            artifact=artifact, offset=0,
        )
    magic, version, kind, generation, paylen = _SB_HEADER.unpack_from(blob, 0)
    if magic != SUPERBLOCK_MAGIC:
        raise CorruptionError(
            f"{artifact}: bad superblock magic {magic!r}", artifact=artifact, offset=0
        )
    end = _SB_HEADER.size + paylen
    if paylen > len(blob) or end + _CRC.size > len(blob):
        raise TornWriteError(
            f"{artifact}: superblock payload runs past end of data",
            artifact=artifact, offset=0,
        )
    (crc,) = _CRC.unpack_from(blob, end)
    if crc != crc32c(blob[:end]):
        raise CorruptionError(
            f"{artifact}: superblock CRC mismatch", artifact=artifact, offset=0
        )
    if version > SUPERBLOCK_VERSION:
        raise CorruptionError(
            f"{artifact}: superblock version {version} is from the future",
            artifact=artifact, offset=0,
        )
    return Superblock(kind, generation, bytes(blob[_SB_HEADER.size:end]), version), end + _CRC.size


def frame_record(payload: bytes) -> bytes:
    """Wrap one record payload in a CRC frame."""
    return _FRAME_HEADER.pack(RECORD_MAGIC, len(payload), crc32c(payload)) + payload


@dataclass(frozen=True)
class ScannedRecord:
    """One record met while scanning a framed region."""

    offset: int        #: byte offset of the frame header
    payload: bytes
    ok: bool           #: CRC matched
    error: Optional[str] = None


@dataclass
class ScanResult:
    """Outcome of scanning a framed region for records."""

    records: list            #: every complete frame met, in order (ScannedRecord)
    valid_end: int           #: offset just past the last intact frame
    torn_bytes: int = 0      #: trailing bytes belonging to an incomplete frame
    stopped_reason: Optional[str] = None  #: why the scan stopped early, if it did

    @property
    def corrupt(self) -> list:
        return [r for r in self.records if not r.ok]


def scan_frames(blob: bytes, start: int = 0, *, artifact: str = "artifact") -> ScanResult:
    """Walk record frames from ``start`` to the end of ``blob``.

    * incomplete trailing frame -> counted in ``torn_bytes`` (crash
      mid-append; safe to truncate back to ``valid_end``);
    * complete frame, CRC mismatch -> a corrupt record in ``records``
      with ``ok=False``; the scan continues past it;
    * bad frame magic -> the region is unscannable from there on
      (``stopped_reason``), since record boundaries are lost.
    """
    result = ScanResult(records=[], valid_end=start)
    off = start
    n = len(blob)
    while off < n:
        if off + _FRAME_HEADER.size > n:
            result.torn_bytes = n - off
            break
        magic, length, crc = _FRAME_HEADER.unpack_from(blob, off)
        if magic != RECORD_MAGIC:
            result.stopped_reason = f"bad record magic at offset {off}"
            break
        end = off + _FRAME_HEADER.size + length
        if end > n:
            result.torn_bytes = n - off
            break
        payload = bytes(blob[off + _FRAME_HEADER.size : end])
        ok = crc32c(payload) == crc
        result.records.append(
            ScannedRecord(
                off, payload, ok, None if ok else f"CRC mismatch at offset {off}"
            )
        )
        off = end
        result.valid_end = off
    return result


def iter_payloads(blob: bytes, start: int = 0) -> Iterator[bytes]:
    """Yield the payloads of every *intact* frame (convenience wrapper)."""
    for record in scan_frames(blob, start).records:
        if record.ok:
            yield record.payload
