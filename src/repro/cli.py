"""Command-line interface to a local or remote DEBAR vault.

::

    python -m repro backup  --vault ~/.debar --job homedirs /data/home
    python -m repro list    --vault ~/.debar
    python -m repro restore --vault ~/.debar --run 3 --dest /restore
    python -m repro verify  --vault ~/.debar
    python -m repro audit   --vault ~/.debar --deep
    python -m repro scrub   --vault ~/.debar --repair --peer replica:7070
    python -m repro stats   --vault ~/.debar [--telemetry]
    python -m repro trace   backup --vault ~/.debar --job homedirs /data/home
    python -m repro recover-index --vault ~/.debar
    python -m repro serve   --vault ~/.debar --port 7070
    python -m repro serve   --vault ~/.debar --port 7070 --node-name a \\
                            --replicate-to b=host:7071
    python -m repro backup  --connect host:7070 --job homedirs /data/home
    python -m repro restore --connect host:7070 --run 3 --dest /restore \\
                            --replica b=host:7071
    python -m repro repl-status --connect host:7070 --json status.json
    python -m repro rebuild --vault /new/a --node a --peer b=host:7071
    python -m repro route   --state /srv/router --port 7700 \\
                            --node a=host:7070 --node b=host:7071
    python -m repro serve   --vault ~/.debar --port 7072 --node-name c \\
                            --advertise host:7700
    python -m repro backup  --route host:7700 --job homedirs /data/home
    python -m repro cluster-status --connect host:7700 --json cluster.json
    python -m repro rebalance --route host:7700
    python -m repro serve   --vault /srv/archive --port 7080 --archive \\
                            --retention keep-last=7,daily=14
    python -m repro serve   --vault ~/.debar --port 7070 --node-name a \\
                            --archive-to vaultkeep=host:7080
    python -m repro archive-status --connect host:7080 --json archive.json
    python -m repro restore --connect host:7080 --as-of 3 --dest /restore
    python -m repro runs    --connect host:7070 --json
    python -m repro forget  --vault ~/.debar --run 2 --gc

``--telemetry`` (on ``backup``, ``restore``, ``gc`` and ``stats``) turns on
the metrics registry for the invocation; ``backup``/``restore``/``gc``
persist the cumulative counters to ``<vault>/telemetry.json`` so a later
``stats --telemetry`` can report across runs.  ``trace`` wraps ``backup`` or
``restore`` and prints the span tree of the invocation.

``serve`` hosts a vault behind the wire protocol of :mod:`repro.net`
(DESIGN.md §9); every data command except ``audit`` and ``recover-index``
then also accepts ``--connect host:port`` in place of ``--vault`` and runs
against the daemon through :class:`repro.net.client.RemoteBackupClient`.

Exit codes are part of the interface::

    0   success
    1   operational error (missing vault/run, I/O failure, refused
        connection, retry budget exhausted)
    2   usage error (argparse: unknown flags, missing arguments, or
        neither/both of --vault and --connect)
    3   corruption: ``verify`` failed to resolve a fingerprint or found a
        payload digest mismatch; ``audit`` reported findings; ``scrub``
        found damage it could not repair
    4   ``serve`` could not bind its listening socket

Corruption is mapped to exit code 3 in exactly one place —
:func:`main` catches the typed
:class:`~repro.durability.errors.CorruptionError` — so every command
that trips over rotted media reports it the same way.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import threading
from contextlib import contextmanager
from pathlib import Path
from types import SimpleNamespace
from typing import List, Optional

from repro.durability.errors import CorruptionError, DiskFullError
from repro.net.client import RemoteBackupClient
from repro.net.framing import ProtocolError
from repro.net.server import serve_vault
from repro.system.vault import DebarVault, VaultError
from repro.telemetry import enable as telemetry_enable
from repro.telemetry.export import build_snapshot, merge_snapshot_file, save_snapshot
from repro.util import fmt_bytes

#: Per-vault cumulative telemetry snapshot (counters survive across runs).
TELEMETRY_SNAPSHOT = "telemetry.json"

# Documented exit codes (see module docstring).
EXIT_OK = 0
EXIT_ERROR = 1
EXIT_USAGE = 2  # argparse's own convention; validated in main()
EXIT_CORRUPTION = 3
EXIT_SERVE = 4


def _parse_connect(spec: str):
    host, sep, port = spec.rpartition(":")
    if not sep or not port.isdigit():
        raise VaultError(f"expected host:port, got {spec!r}")
    return host or "127.0.0.1", int(port)


def _parse_peer(spec: str):
    """``[NAME=]HOST:PORT`` -> (name, host, port); name defaults to the
    address, which keeps reports readable without forcing a cluster map."""
    name, sep, address = spec.partition("=")
    if not sep:
        name, address = spec, spec
    host, port = _parse_connect(address)
    return name, host, port


def _retry_from(args):
    """The remote retry policy this invocation asked for, or None for the
    defaults.  ``--connect-timeout`` bounds only the TCP connect, so a
    down node fails fast without shrinking the request timeout that long
    server-side work (commit, dedup-2) legitimately needs."""
    from repro.net.client import RetryPolicy

    timeout = getattr(args, "connect_timeout", None)
    if timeout is None:
        return None
    return RetryPolicy(connect_timeout=timeout)


@contextmanager
def _open(args):
    """The command's target: a local vault or a remote daemon.

    Both expose the same data surface (backup/restore/runs/stats/gc/
    verify/forget), so the commands below stay shape-agnostic except
    where return types genuinely differ.
    """
    if getattr(args, "route", None):
        # Redirect mode: ask the router where the work belongs, then talk
        # to that node directly.  Commands without a placement key (a
        # job-less `list`, `stats`) fall back to the router's proxy path —
        # the router speaks the full protocol, so its own address works as
        # a server address.
        from repro.frontdoor.client import RouterClient

        host, port = _parse_connect(args.route)
        retry = _retry_from(args)
        kwargs = {
            "client_name": getattr(args, "client", None) or "remote",
            "token": getattr(args, "token", None),
            "retry": retry,
        }
        with RouterClient(host, port, retry=retry) as rc:
            client = None
            try:
                if getattr(args, "run", None) is not None:
                    # Run-keyed commands (restore/forget) locate by
                    # (job, run id) — run ids are per-vault and collide.
                    client = rc.client_for_run(
                        args.run, job=getattr(args, "job", None), **kwargs
                    )
                elif getattr(args, "job", None):
                    client = rc.client_for_job(args.job, **kwargs)
            except (KeyError, ConnectionError):
                # No live owner to redirect to (the node that recorded
                # the run may be down) — the router's proxy path still
                # reaches the replica set.
                client = None
            if client is None:
                client = RemoteBackupClient(host, port, **kwargs)
        try:
            yield client
        finally:
            client.close()
    elif getattr(args, "connect", None):
        host, port = _parse_connect(args.connect)
        client = RemoteBackupClient(
            host, port,
            client_name=getattr(args, "client", None) or "remote",
            token=getattr(args, "token", None),
            retry=_retry_from(args),
        )
        try:
            yield client
        finally:
            client.close()
    else:
        with DebarVault(args.vault) as vault:
            yield vault


def _telemetry_wanted(args) -> bool:
    return getattr(args, "telemetry", False) or getattr(args, "trace", False)


def _telemetry_begin(args):
    """Enable telemetry for this invocation (before the vault is built, so
    every component binds live instruments).  Returns (registry, tracer) or
    (None, None) when telemetry was not requested."""
    if not _telemetry_wanted(args):
        return None, None
    return telemetry_enable()


def _telemetry_finish(args, registry, tracer) -> None:
    """Fold the vault's persisted counters in, re-persist, honour --trace
    and --telemetry-json.  Remote invocations have no vault directory to
    persist into; their (client-side, ``net.*``-bearing) snapshot still
    goes to --telemetry-json."""
    if registry is None:
        return
    if getattr(args, "vault", None):
        path = Path(args.vault) / TELEMETRY_SNAPSHOT
        merge_snapshot_file(path, registry)
        snapshot = build_snapshot(registry, tracer)
        save_snapshot(snapshot, path)
    else:
        snapshot = build_snapshot(registry, tracer)
    if getattr(args, "telemetry_json", None):
        save_snapshot(snapshot, args.telemetry_json)
        print(f"telemetry snapshot written to {args.telemetry_json}")
    if getattr(args, "trace", False):
        rendered = tracer.render()
        if rendered:
            print(rendered.rstrip("\n"))


def _file_count(run) -> int:
    # VaultRun carries the file list; RemoteRun carries the count.
    return run.files if isinstance(run.files, int) else len(run.files)


def cmd_backup(args) -> int:
    registry, tracer = _telemetry_begin(args)
    with _open(args) as target:
        # The timestamp comes from the vault's single clock helper
        # (repro.telemetry.clock.wall_now), not a raw time.time() here.
        run = target.backup(args.job, args.paths)
        saved = run.logical_bytes - run.transferred_bytes
        print(
            f"run {run.run_id}: {_file_count(run)} files, "
            f"{fmt_bytes(run.logical_bytes)} logical, "
            f"{fmt_bytes(run.transferred_bytes)} transferred "
            f"({fmt_bytes(saved)} filtered as duplicate)"
        )
        _telemetry_finish(args, registry, tracer)
    return EXIT_OK


def _run_chunk_count(run) -> Optional[int]:
    """Per-run chunk count: RemoteRun carries it from the wire (None from
    a pre-archive server); VaultRun derives it from the file entries."""
    chunks = getattr(run, "chunks", None)
    if chunks is None and not isinstance(run.files, int):
        chunks = sum(len(e.fingerprints) for e in run.files)
    return chunks


def cmd_list(args) -> int:
    with _open(args) as target:
        runs = target.runs(job=args.job)
        if getattr(args, "json", False):
            rows = [
                {
                    "run_id": run.run_id,
                    "job": run.job,
                    "timestamp": run.timestamp,
                    "files": _file_count(run),
                    "logical_bytes": run.logical_bytes,
                    "transferred_bytes": run.transferred_bytes,
                    "chunks": _run_chunk_count(run),
                }
                for run in runs
            ]
            print(json.dumps(rows, indent=1, sort_keys=True))
            return EXIT_OK
        if not runs:
            print("no runs recorded")
            return EXIT_OK
        print(f"{'run':>4}  {'job':<16} {'files':>6} {'logical':>10} {'transferred':>12}")
        for run in runs:
            print(
                f"{run.run_id:>4}  {run.job:<16} {_file_count(run):>6} "
                f"{fmt_bytes(run.logical_bytes):>10} "
                f"{fmt_bytes(run.transferred_bytes):>12}"
            )
    return EXIT_OK


def cmd_restore(args) -> int:
    registry, tracer = _telemetry_begin(args)
    as_of = getattr(args, "as_of", None)
    if (args.run is None) == (as_of is None):
        print(
            "error: exactly one of --run or --as-of is required",
            file=sys.stderr,
        )
        return EXIT_USAGE
    if as_of is not None:
        try:
            return _restore_as_of(args, registry, tracer)
        except (KeyError, ValueError) as exc:
            print(
                f"error: {exc.args[0] if exc.args else exc}", file=sys.stderr
            )
            return EXIT_ERROR
    replicas = getattr(args, "replica", None) or []
    with _open(args) as target:
        if replicas:
            paths = _restore_with_failover(args, target, replicas)
        else:
            paths = target.restore(
                args.run, args.dest, strip_prefix=args.strip_prefix,
                job=getattr(args, "job", None),
            )
        print(f"restored {len(paths)} files to {args.dest}")
        _telemetry_finish(args, registry, tracer)
    return EXIT_OK


def _restore_as_of(args, registry, tracer) -> int:
    """Point-in-time restore (``--as-of``, DESIGN.md §15.5).

    Resolution order: the live catalog first when it still records the
    run (the same bytes, without folding a delta chain), then the
    archived chain — locally at ``<vault>/archive``, over ``--connect``
    via ``ARCHIVE_STATUS``/``DELTA_FETCH``, or through ``--route`` by
    sweeping the live nodes' archives.  The archive path works with the
    origin vault destroyed, which is the disaster-recovery story.
    """
    job = getattr(args, "job", None)
    origin = getattr(args, "origin", None)
    if getattr(args, "route", None):
        from repro.frontdoor.client import RouterClient

        host, port = _parse_connect(args.route)
        retry = _retry_from(args)
        kwargs = {
            "client_name": getattr(args, "client", None) or "remote",
            "token": getattr(args, "token", None),
            "retry": retry,
        }
        with RouterClient(host, port, retry=retry) as rc:
            client = None
            try:
                client = rc.client_for_run(args.as_of, job=job, **kwargs)
            except (KeyError, ConnectionError):
                client = None  # origin gone: fall through to the archives
            if client is not None:
                try:
                    paths = client.restore(
                        args.as_of, args.dest,
                        strip_prefix=args.strip_prefix, job=job,
                    )
                finally:
                    client.close()
            else:
                client, o, j = rc.locate_archive_point(
                    args.as_of, job=job, origin=origin, **kwargs
                )
                try:
                    paths = client.restore_as_of(
                        args.as_of, args.dest,
                        strip_prefix=args.strip_prefix, job=j, origin=o,
                    )
                finally:
                    client.close()
    elif getattr(args, "connect", None):
        with _open(args) as client:
            if any(r.run_id == args.as_of for r in client.runs(job=job)):
                paths = client.restore(
                    args.as_of, args.dest,
                    strip_prefix=args.strip_prefix, job=job,
                )
            else:
                paths = client.restore_as_of(
                    args.as_of, args.dest,
                    strip_prefix=args.strip_prefix, job=job, origin=origin,
                )
    else:
        from repro.archive import ArchiveStore, restore_local

        with DebarVault(args.vault) as vault:
            if any(r.run_id == args.as_of for r in vault.runs(job=job)):
                paths = vault.restore(
                    args.as_of, args.dest,
                    strip_prefix=args.strip_prefix, job=job,
                )
            else:
                store = ArchiveStore(
                    Path(args.vault) / "archive", registry=registry
                )
                paths = restore_local(
                    store, args.as_of, args.dest,
                    strip_prefix=args.strip_prefix, job=job, origin=origin,
                    registry=registry,
                )
    print(
        f"restored {len(paths)} files to {args.dest} (as of run {args.as_of})"
    )
    _telemetry_finish(args, registry, tracer)
    return EXIT_OK


def _restore_with_failover(args, target, replicas: List[str]) -> List[Path]:
    """Restore through a FailoverChunkReader: the primary source first,
    each ``--replica`` daemon next, so a chunk lost (or timing out) at the
    primary is transparently served by a surviving replica."""
    from repro.net.client import RemoteChunkReader
    from repro.replication.failover import FailoverChunkReader, ReplicaReader

    job = getattr(args, "job", None)
    if isinstance(target, RemoteBackupClient):
        entries = target.run_entries(args.run, job=job)
        primary = (args.connect, RemoteChunkReader(target.net))
        engine = target.engine
    else:
        for run in target.runs(job=job):
            if run.run_id == args.run:
                break
        else:
            raise VaultError(f"no run {args.run} in this vault")
        entries = run.files
        # Cold-capable when a cold tier is attached: hot chunks via the
        # chunk store, cold chunks via planned range GETs; a dead cold
        # backend raises OSError and falls through to the replicas.
        local_source = (
            target.cold_reader()
            if target.repository.cold is not None else target.chunk_store
        )
        primary = ("local vault", local_source)
        engine = target.engine
    sources = [primary]
    for spec in replicas:
        name, host, port = _parse_peer(spec)
        sources.append((name, ReplicaReader(host, port, name=name)))
    reader = FailoverChunkReader(sources)
    try:
        reader.plan([fp for e in entries for fp in e.fingerprints])
        return engine.restore_run(entries, reader, args.dest, args.strip_prefix)
    finally:
        for _, source in sources[1:]:
            source.close()


def cmd_verify(args) -> int:
    with _open(args) as target:
        report = target.verify(deep=args.deep)
        # Local corruption raises CorruptionError, mapped to exit 3 by
        # main().  The daemon reports corruption in-band so a remote
        # verify can still exit 3 (the server's exception does not cross
        # the wire typed).
        if not report.get("ok", True):
            print(f"corruption: {report.get('finding')}", file=sys.stderr)
            return EXIT_CORRUPTION
        print(
            f"OK: {report['fingerprints']} fingerprints across "
            f"{report['runs']} runs all resolve"
        )
    return EXIT_OK


def cmd_audit(args) -> int:
    # Opening a vault creates one; an auditor must never "pass" a vault
    # it just conjured out of a mistyped path.
    if not Path(args.vault).is_dir():
        print(f"error: no vault at {args.vault}", file=sys.stderr)
        return EXIT_ERROR
    with _open(args) as vault:
        report = vault.audit(deep=args.deep)
        print(report.summary())
    return EXIT_OK if report.ok else EXIT_CORRUPTION


def cmd_stats(args) -> int:
    registry, tracer = _telemetry_begin(args)
    with _open(args) as target:
        if registry is not None and getattr(args, "vault", None):
            # Prior runs' counters accumulate under the live gauges.
            merge_snapshot_file(Path(args.vault) / TELEMETRY_SNAPSHOT, registry)
        s = target.stats()
        ratio = s.get("compression_ratio")
        ratio_text = "inf" if ratio is None or ratio == float("inf") else f"{ratio:.2f}:1"
        print(f"runs               : {s['runs']:.0f}")
        print(f"logical protected  : {fmt_bytes(s['logical_bytes'])}")
        print(f"physical stored    : {fmt_bytes(s['physical_bytes'])}")
        print(f"compression        : {ratio_text}")
        print(f"containers         : {s['containers']:.0f}")
        print(f"index entries      : {s['index_entries']:.0f} "
              f"({s['index_utilization']:.1%} utilized)")
        if registry is not None:
            snapshot = build_snapshot(registry, tracer)
            if getattr(args, "telemetry_json", None):
                save_snapshot(snapshot, args.telemetry_json)
                print(f"telemetry snapshot written to {args.telemetry_json}")
            else:
                print(json.dumps(snapshot, indent=1, sort_keys=True))
    return EXIT_OK


def cmd_forget(args) -> int:
    with _open(args) as target:
        target.forget(args.run, job=getattr(args, "job", None))
        if not getattr(args, "gc", False):
            print(
                f"run {args.run} dropped from the catalog "
                "(space reclaimed on gc)"
            )
            return EXIT_OK
        # --gc: close the orphan window (DESIGN.md §15.6) in the same
        # invocation — the run's now-unreferenced chunks are copy-forward
        # collected before the command returns.
        report = target.gc(rewrite_threshold=args.rewrite_threshold)
        if isinstance(report, dict):  # the daemon returns the report's fields
            report = SimpleNamespace(**report)
        print(
            f"run {args.run} dropped; gc reclaimed "
            f"{fmt_bytes(report.bytes_reclaimed)} "
            f"({report.containers_removed} containers removed, "
            f"{report.containers_rewritten} rewritten)"
        )
    return EXIT_OK


def cmd_gc(args) -> int:
    registry, tracer = _telemetry_begin(args)
    with _open(args) as target:
        report = target.gc(rewrite_threshold=args.rewrite_threshold)
        if isinstance(report, dict):  # the daemon returns the report's fields
            report = SimpleNamespace(**report)
        print(
            f"scanned {report.containers_scanned} containers: "
            f"{report.containers_removed} removed, "
            f"{report.containers_rewritten} rewritten, "
            f"{report.containers_kept_with_dead} kept with dead space; "
            f"{fmt_bytes(report.bytes_reclaimed)} reclaimed"
        )
        _telemetry_finish(args, registry, tracer)
    return EXIT_OK


def cmd_scrub(args) -> int:
    # Same guard as audit: never scrub a vault conjured from a typo.
    if not Path(args.vault).is_dir():
        print(f"error: no vault at {args.vault}", file=sys.stderr)
        return EXIT_ERROR
    from repro.durability.scrubber import Scrubber
    from repro.net.client import NetClient, RemoteChunkReader

    registry, tracer = _telemetry_begin(args)
    nets: list = []
    peers: list = []
    try:
        for spec in args.peer or []:
            host, port = _parse_connect(spec)
            net = NetClient(host, port, client_name="scrub")
            nets.append(net)
            peers.append(RemoteChunkReader(net, name=spec))
        if args.repair and not peers:
            # No peers named: heal from the replicas this vault already
            # replicates to (replication.json), automatically.
            from repro.replication.failover import ReplicaReader
            from repro.replication.replicator import peers_from_state

            for name, (host, port) in sorted(peers_from_state(args.vault).items()):
                peers.append(ReplicaReader(host, port, name=name))
            if peers:
                print(
                    "repair sources from replication state: "
                    + ", ".join(p.name for p in peers)
                )
        with DebarVault(args.vault) as vault:
            scrubber = Scrubber(
                vault,
                peers=peers,
                rate_bps=args.rate * 1024 * 1024 if args.rate else None,
                max_records=args.limit,
                reset_cursor=args.reset_cursor,
            )
            report = scrubber.run(repair=args.repair)
            print(report.summary())
            if args.report_json:
                Path(args.report_json).write_text(
                    json.dumps(report.to_json(), indent=1)
                )
                print(f"scrub report written to {args.report_json}")
            _telemetry_finish(args, registry, tracer)
    finally:
        for net in nets:
            net.close()
        for peer in peers:
            close = getattr(peer, "close", None)
            if close is not None:
                close()
    return EXIT_CORRUPTION if report.unrepaired else EXIT_OK


def cmd_migrate(args) -> int:
    """Move eligible hot containers to the object-store cold tier."""
    if not Path(args.vault).is_dir():
        print(f"error: no vault at {args.vault}", file=sys.stderr)
        return EXIT_ERROR
    from repro.backend.lifecycle import LifecycleManager, LifecyclePolicy

    registry, tracer = _telemetry_begin(args)
    with DebarVault(args.vault) as vault:
        if vault.repository.cold is None or args.cold_root:
            vault.enable_cold_tier(root=args.cold_root)
        manager = LifecycleManager(
            vault,
            LifecyclePolicy(
                min_age_runs=args.min_age, min_idle_runs=args.min_idle
            ),
        )
        report = manager.migrate(limit=args.limit, dry_run=args.dry_run)
        verb = "would migrate" if args.dry_run else "migrated"
        print(
            f"{verb} {report.migrated} of {report.examined} hot containers "
            f"({fmt_bytes(report.bytes_moved)}); {report.skipped} kept hot, "
            f"{report.already_cold} already cold"
        )
        for failure in report.failed:
            print(f"  failed: {failure}", file=sys.stderr)
        if args.report_json:
            Path(args.report_json).write_text(
                json.dumps(report.to_json(), indent=1)
            )
            print(f"migration report written to {args.report_json}")
        _telemetry_finish(args, registry, tracer)
    return EXIT_ERROR if report.failed else EXIT_OK


def cmd_tier_status(args) -> int:
    """Per-tier container placement and lifecycle scores."""
    if not Path(args.vault).is_dir():
        print(f"error: no vault at {args.vault}", file=sys.stderr)
        return EXIT_ERROR
    from repro.backend.lifecycle import LifecycleManager, LifecyclePolicy

    with DebarVault(args.vault) as vault:
        manager = LifecycleManager(
            vault,
            LifecyclePolicy(
                min_age_runs=args.min_age, min_idle_runs=args.min_idle
            ),
        )
        status = manager.tier_status()
        tiers = status["tiers"]
        print(
            f"hot : {tiers['hot']['containers']} containers "
            f"({fmt_bytes(tiers['hot']['bytes'])})"
        )
        print(
            f"cold: {tiers['cold']['containers']} containers "
            f"({fmt_bytes(tiers['cold']['bytes'])})"
            + ("" if status["cold_attached"] else "  [no cold tier attached]")
        )
        for c in status["containers"]:
            mark = " eligible" if c["eligible"] and c["tier"] == "hot" else ""
            print(
                f"  container {c['container_id']:>4}  {c['tier']:<4} "
                f"age={c['age_runs']} idle={c['idle_runs']}{mark}"
            )
        if args.json:
            Path(args.json).write_text(json.dumps(status, indent=1))
            print(f"tier status written to {args.json}")
    return EXIT_OK


def cmd_recover_index(args) -> int:
    with _open(args) as vault:
        entries = vault.recover_index()
        print(f"rebuilt index from container metadata: {entries} entries")
    return EXIT_OK


def cmd_serve(args) -> int:
    from repro.net.server import TenantConfig

    registry, tracer = _telemetry_begin(args)
    try:
        tenants = [TenantConfig.parse(spec) for spec in (args.tenant or [])]
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    with DebarVault(args.vault) as vault:
        if args.cold_root:
            vault.enable_cold_tier(root=args.cold_root)
        try:
            server = serve_vault(
                vault,
                host=args.host,
                port=args.port,
                registry=registry,
                node_name=args.node_name,
                threaded=args.threaded,
                max_inflight=args.max_inflight,
                max_buffered_bytes=args.max_buffered_bytes,
                session_ttl=args.session_ttl,
                tenants=tenants,
            )
        except OSError as exc:
            print(f"error: cannot bind {args.host}:{args.port}: {exc}",
                  file=sys.stderr)
            return EXIT_SERVE
        if args.replicate_to:
            from repro.replication.replicator import Replicator

            peers = {}
            for spec in args.replicate_to:
                name, peer_host, peer_port = _parse_peer(spec)
                peers[name] = (peer_host, peer_port)
            replicator = Replicator(
                vault,
                node_name=args.node_name,
                peers=peers,
                replication_factor=args.replication_factor,
                registry=registry,
            )
            vault.replicator = replicator
            server.replicator = replicator
            # Containers sealed before these peers were configured (or
            # while the daemon was down) are owed too.
            replicator.sync()
            print(
                f"replicating as {args.node_name!r} "
                f"(rf={replicator.ring.replication_factor}) to: "
                + ", ".join(sorted(peers)),
                flush=True,
            )
        if args.archive or args.retention:
            # Archive role: the server's delta handlers are always live;
            # the flag wires the retention director so stored chains are
            # compacted (expired points merged forward) after each push.
            from repro.archive.retention import RetentionPolicy
            from repro.director.director import Director

            try:
                retention = (
                    RetentionPolicy.parse(args.retention)
                    if args.retention else None
                )
            except ValueError as exc:
                print(f"error: {exc}", file=sys.stderr)
                server.shutdown_gracefully(timeout=1.0)
                return EXIT_USAGE
            server.archive_director = Director(retention=retention)
            print(
                "archive role enabled "
                + (f"(retention {retention.spec()})" if retention
                   else "(keeping every restore point)"),
                flush=True,
            )
        if args.archive_to:
            from repro.archive.shipper import ArchiveShipper

            peers = {}
            for spec in args.archive_to:
                name, peer_host, peer_port = _parse_peer(spec)
                peers[name] = (peer_host, peer_port)
            try:
                shipper = ArchiveShipper(
                    vault,
                    node_name=args.node_name,
                    peers=peers,
                    registry=registry,
                )
            except ValueError as exc:
                print(f"error: {exc}", file=sys.stderr)
                server.shutdown_gracefully(timeout=1.0)
                return EXIT_USAGE
            vault.archive_shipper = shipper
            server.archive_shipper = shipper
            # Runs sealed before these peers were configured (or while
            # the daemon was down) are owed too.
            shipper.sync()
            print(
                f"shipping deltas as {args.node_name!r} to: "
                + ", ".join(sorted(peers)),
                flush=True,
            )
        host, port = server.server_address
        if args.port_file:
            # Written after bind so a supervisor polling the file never
            # reads a port nobody listens on.
            Path(args.port_file).write_text(f"{port}\n")
        print(f"serving vault {args.vault} on {host}:{port}", flush=True)
        if args.advertise:
            # Join the front door's membership table (after bind, so the
            # advertised address is live before the router probes it).  A
            # re-join with the same name+address is idempotent, so a
            # restarted daemon does not churn the ring epoch.
            from repro.net import messages as msg
            from repro.net.client import NetClient

            route_host, route_port = _parse_connect(args.advertise)
            try:
                with NetClient(
                    route_host, route_port, client_name=args.node_name
                ) as net:
                    ack = net.call_json(msg.NODE_JOIN, {
                        "name": args.node_name,
                        "address": f"{host}:{port}",
                    })
                print(
                    f"advertised as {args.node_name!r} to router "
                    f"{args.advertise} (epoch {ack['epoch']})",
                    flush=True,
                )
            except (ProtocolError, ConnectionError, OSError) as exc:
                # The daemon still serves; an operator can join it later.
                print(
                    f"warning: could not advertise to {args.advertise}: {exc}",
                    file=sys.stderr, flush=True,
                )

        stop = threading.Event()

        def _request_stop(signum, frame):
            stop.set()

        previous = {
            sig: signal.signal(sig, _request_stop)
            for sig in (signal.SIGTERM, signal.SIGINT)
        }
        thread = threading.Thread(
            target=server.serve_forever, name="repro-serve", daemon=True
        )
        thread.start()
        try:
            while not stop.is_set():
                stop.wait(0.2)
        finally:
            for sig, handler in previous.items():
                signal.signal(sig, handler)
            # Graceful drain: stop accepting, finish in-flight requests,
            # flush the replication queue, then close the sockets.
            drained = server.shutdown_gracefully(timeout=args.drain_timeout)
            vault.replicator = None
            vault.archive_shipper = None
            if not drained:
                print("drain timed out; forced close", flush=True)
            thread.join(timeout=5)
            _telemetry_finish(args, registry, tracer)
    print("shutdown complete", flush=True)
    return EXIT_OK


def cmd_rebuild(args) -> int:
    """Reconstruct a lost node's vault from its surviving replicas."""
    from repro.replication.rebuild import RebuildError, rebuild_node

    peers = {}
    for spec in args.peer:
        name, host, port = _parse_peer(spec)
        peers[name] = (host, port)
    try:
        report = rebuild_node(args.node, args.vault, peers)
    except RebuildError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR
    print(
        f"rebuilt node {args.node!r} at {args.vault}: "
        f"{report.containers_recovered} containers "
        f"({fmt_bytes(report.bytes_recovered)}), "
        f"{report.chunks_verified} chunks verified, "
        f"{report.index_entries} index entries, "
        f"{report.catalog_runs} catalogued runs "
        f"(catalog from {report.catalog_source})"
    )
    for cid, peer in sorted(report.sources.items()):
        print(f"  container {cid}: pulled from {peer}")
    for note in report.notes:
        print(f"  note: {note}")
    print(f"audit: {'PASS' if report.audit_ok else 'FAIL'}")
    if args.report_json:
        Path(args.report_json).write_text(json.dumps(report.to_json(), indent=1))
        print(f"rebuild report written to {args.report_json}")
    return EXIT_OK if report.audit_ok else EXIT_CORRUPTION


def cmd_repl_status(args) -> int:
    """Replication state: inbound replica inventory + outbound queue."""
    if getattr(args, "connect", None):
        from repro.net import messages as m
        from repro.net.client import NetClient

        host, port = _parse_connect(args.connect)
        with NetClient(host, port, client_name="repl-status") as net:
            status = net.call_json(m.REPL_STATUS, {})
    else:
        if not Path(args.vault).is_dir():
            print(f"error: no vault at {args.vault}", file=sys.stderr)
            return EXIT_ERROR
        from repro.replication.replicator import STATE_FILE
        from repro.replication.store import ReplicaStore

        state_path = Path(args.vault) / STATE_FILE
        outbound = None
        if state_path.exists():
            try:
                outbound = json.loads(state_path.read_text())
            except ValueError:
                outbound = {"error": "replication state unreadable"}
        status = {
            "node": (outbound or {}).get("node"),
            "replicas": ReplicaStore(Path(args.vault) / "replicas").status(),
            "outbound": outbound,
        }
    print(json.dumps(status, indent=1, sort_keys=True))
    if args.json:
        Path(args.json).write_text(json.dumps(status, indent=1, sort_keys=True))
        print(f"replication status written to {args.json}")
    return EXIT_OK


def cmd_archive_status(args) -> int:
    """Archive state: stored delta chains + outbound shipping queue."""
    if getattr(args, "connect", None) or getattr(args, "route", None):
        from repro.net import messages as m
        from repro.net.client import NetClient

        host, port = _parse_connect(args.connect or args.route)
        with NetClient(
            host, port,
            client_name="archive-status", retry=_retry_from(args),
        ) as net:
            status = net.call_json(m.ARCHIVE_STATUS, {})
    else:
        if not Path(args.vault).is_dir():
            print(f"error: no vault at {args.vault}", file=sys.stderr)
            return EXIT_ERROR
        from repro.archive.shipper import STATE_FILE
        from repro.archive.store import ArchiveStore

        state_path = Path(args.vault) / STATE_FILE
        outbound = None
        if state_path.exists():
            try:
                outbound = json.loads(state_path.read_text())
            except ValueError:
                outbound = {"error": "archive state unreadable"}
        status = {
            "node": (outbound or {}).get("node"),
            **ArchiveStore(Path(args.vault) / "archive").status(),
            "outbound": outbound,
        }
    print(json.dumps(status, indent=1, sort_keys=True))
    if args.json:
        Path(args.json).write_text(json.dumps(status, indent=1, sort_keys=True))
        print(f"archive status written to {args.json}")
    return EXIT_OK


def cmd_route(args) -> int:
    """Run the cluster front door (DESIGN.md §14)."""
    from repro.frontdoor.membership import ClusterMembership, MembershipError
    from repro.frontdoor.router import FrontDoorRouter

    registry, tracer = _telemetry_begin(args)
    state = Path(args.state)
    state.mkdir(parents=True, exist_ok=True)
    membership = ClusterMembership(
        state, replication_factor=args.replication_factor
    )
    try:
        for spec in args.node or []:
            name, node_host, node_port = _parse_peer(spec)
            membership.join(name, f"{node_host}:{node_port}")
    except MembershipError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    try:
        router = FrontDoorRouter(
            membership,
            host=args.host,
            port=args.port,
            registry=registry,
            state_dir=state,
            probe_interval=args.probe_interval,
            probe_timeout=args.probe_timeout,
            mark_down_after=args.mark_down_after,
            proxy_timeout=args.proxy_timeout,
        )
    except OSError as exc:
        print(f"error: cannot bind {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return EXIT_SERVE
    host, port = router.server_address
    if args.port_file:
        Path(args.port_file).write_text(f"{port}\n")
    print(
        f"routing cluster of {len(membership.names())} node(s) on "
        f"{host}:{port} (epoch {membership.epoch})",
        flush=True,
    )

    stop = threading.Event()

    def _request_stop(signum, frame):
        stop.set()

    previous = {
        sig: signal.signal(sig, _request_stop)
        for sig in (signal.SIGTERM, signal.SIGINT)
    }
    thread = threading.Thread(
        target=router.serve_forever, name="repro-route", daemon=True
    )
    thread.start()
    router.health.start()
    try:
        while not stop.is_set():
            stop.wait(0.2)
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
        router.shutdown()
        router.server_close()
        thread.join(timeout=5)
        _telemetry_finish(args, registry, tracer)
    print("router shutdown complete", flush=True)
    return EXIT_OK


def cmd_cluster_status(args) -> int:
    """The router's view: membership, health, epoch, rebalance progress."""
    from repro.frontdoor.client import RouterClient

    host, port = _parse_connect(args.connect)
    with RouterClient(host, port, retry=_retry_from(args)) as rc:
        status = rc.cluster_status()
    print(f"epoch {status['epoch']}  rf={status['replication_factor']}")
    for node in status["nodes"]:
        marker = "" if node["state"] == "up" else f"  ({node['fails']} failed probes)"
        print(f"  {node['name']:<12} {node['address']:<22} {node['state']}{marker}")
    rebalance = status.get("rebalance") or {}
    if rebalance.get("steps"):
        print(
            f"rebalance: {rebalance['done']}/{rebalance['steps']} steps done "
            f"(planned at epoch {rebalance['epoch']})"
        )
    if args.json:
        Path(args.json).write_text(json.dumps(status, indent=1, sort_keys=True))
        print(f"cluster status written to {args.json}")
    down = [n["name"] for n in status["nodes"] if n["state"] != "up"]
    if down:
        print(f"down: {', '.join(down)}", file=sys.stderr)
    return EXIT_OK


def cmd_rebalance(args) -> int:
    """Plan (via the router) and execute the pending container moves."""
    from repro.frontdoor.client import RouterClient
    from repro.frontdoor.rebalance import execute_plan

    host, port = _parse_connect(args.route)
    retry = _retry_from(args)
    with RouterClient(host, port, retry=retry) as rc:
        plan = rc.rebalance_plan()
        addresses = plan.pop("addresses", {})
        total = len(plan["steps"])
        pending = sum(1 for s in plan["steps"] if not s["done"])
        print(
            f"plan at epoch {plan['epoch']}: {total} step(s), "
            f"{pending} pending"
        )
        if args.dry_run:
            for step in plan["steps"]:
                state = "done" if step["done"] else "pending"
                print(
                    f"  {step['origin']} container {step['container_id']} "
                    f"-> {step['dst']}  [{state}]"
                )
            return EXIT_OK
        report = execute_plan(
            plan, addresses, ack=rc.rebalance_ack, retry=retry,
            limit=args.limit,
        )
    print(
        f"executed {report['executed']} step(s); "
        f"{report['pending']} still pending"
        + (f", {len(report['failed'])} failed" if report["failed"] else "")
    )
    for failure in report["failed"]:
        print(f"  failed {failure['id']}: {failure['error']}", file=sys.stderr)
    if args.report_json:
        Path(args.report_json).write_text(json.dumps(report, indent=1))
        print(f"rebalance report written to {args.report_json}")
    return EXIT_ERROR if report["failed"] else EXIT_OK


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DEBAR de-duplicating backup vault (paper reproduction)",
        epilog=(
            "exit codes: 0 success, 1 operational error, 2 usage error, "
            "3 corruption found (verify/audit/scrub), 4 serve could not bind"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, remote_ok: bool = False):
        if remote_ok:
            p.add_argument("--vault", default=None, help="vault directory")
            p.add_argument(
                "--connect",
                default=None,
                metavar="HOST:PORT",
                help="run against a `repro serve` daemon instead of a "
                "local vault (exactly one of --vault/--connect)",
            )
            p.add_argument(
                "--client",
                default=None,
                metavar="NAME",
                help="client name presented in the handshake; must match "
                "the tenant name on a daemon running with --tenant",
            )
            p.add_argument(
                "--token",
                default=None,
                help="tenant token for a daemon running with --tenant",
            )
            p.add_argument(
                "--route",
                default=None,
                metavar="HOST:PORT",
                help="route through a `repro route` front door: look the "
                "owning node up and talk to it directly (redirect mode)",
            )
            p.add_argument(
                "--connect-timeout",
                type=float,
                default=None,
                metavar="SECONDS",
                help="TCP connect budget per attempt (a down node fails "
                "fast instead of hanging the full request timeout)",
            )
        else:
            p.add_argument("--vault", required=True, help="vault directory")

    def telemetry_opts(p):
        p.add_argument(
            "--telemetry",
            action="store_true",
            help="collect metrics for this invocation (persisted in the vault)",
        )
        p.add_argument(
            "--telemetry-json",
            default=None,
            metavar="PATH",
            help="also write the telemetry snapshot JSON to PATH",
        )

    def add_backup(parent, trace: bool):
        p = parent.add_parser(
            "backup", help="back up files/directories under a job name"
        )
        common(p, remote_ok=True)
        p.add_argument("--job", required=True)
        p.add_argument("paths", nargs="+")
        telemetry_opts(p)
        p.set_defaults(func=cmd_backup, trace=trace)
        return p

    def add_restore(parent, trace: bool):
        p = parent.add_parser("restore", help="restore one run")
        common(p, remote_ok=True)
        p.add_argument("--run", type=int, default=None,
                       help="run to restore from the live catalog")
        p.add_argument(
            "--as-of", type=int, default=None, dest="as_of", metavar="RUN",
            help="point-in-time restore: the live catalog when it still "
            "records RUN, else the archived delta chain (works with the "
            "origin vault destroyed); exactly one of --run/--as-of",
        )
        p.add_argument(
            "--job", default=None,
            help="job whose chain records --run (run ids are per-vault: "
            "required to disambiguate a colliding id behind a router)",
        )
        p.add_argument(
            "--origin", default=None, metavar="NODE",
            help="origin node of the archived chain (disambiguates "
            "--as-of when two origins retain the same run id)",
        )
        p.add_argument("--dest", required=True)
        p.add_argument("--strip-prefix", default="/")
        p.add_argument(
            "--replica",
            action="append",
            default=None,
            metavar="[NAME=]HOST:PORT",
            help="replica daemon to fall through to when the primary "
            "misses or times out (repeatable; failover restore)",
        )
        telemetry_opts(p)
        p.set_defaults(func=cmd_restore, trace=trace)
        return p

    add_backup(sub, trace=False)

    p = sub.add_parser("list", aliases=["runs"], help="list recorded runs")
    common(p, remote_ok=True)
    p.add_argument("--job", default=None)
    p.add_argument(
        "--json", action="store_true",
        help="emit one JSON object per run (run_id, job, timestamp, "
        "files, logical_bytes, transferred_bytes, chunks)",
    )
    p.set_defaults(func=cmd_list)

    add_restore(sub, trace=False)

    p = sub.add_parser("verify", help="check every catalogued fingerprint resolves")
    common(p, remote_ok=True)
    p.add_argument(
        "--deep", action="store_true", help="also re-hash every referenced payload"
    )
    p.set_defaults(func=cmd_verify)

    p = sub.add_parser(
        "audit", help="sweep every store invariant and report all findings"
    )
    common(p)
    p.add_argument(
        "--deep", action="store_true", help="also re-hash every referenced payload"
    )
    p.set_defaults(func=cmd_audit)

    p = sub.add_parser("stats", help="vault-level accounting")
    common(p, remote_ok=True)
    telemetry_opts(p)
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser("forget", help="drop a run from the catalog (retention)")
    common(p, remote_ok=True)
    p.add_argument("--run", type=int, required=True)
    p.add_argument(
        "--job", default=None,
        help="job whose chain records --run (run ids are per-vault: "
        "required to disambiguate a colliding id behind a router)",
    )
    p.add_argument(
        "--gc", action="store_true",
        help="run copy-forward GC in the same invocation, closing the "
        "orphan window between forget and the next gc (DESIGN.md §15.6)",
    )
    p.add_argument("--rewrite-threshold", type=float, default=0.5,
                   help="gc rewrite threshold (with --gc)")
    p.set_defaults(func=cmd_forget)

    p = sub.add_parser("gc", help="reclaim space from unreferenced chunks")
    common(p, remote_ok=True)
    p.add_argument("--rewrite-threshold", type=float, default=0.5)
    telemetry_opts(p)
    p.set_defaults(func=cmd_gc)

    p = sub.add_parser(
        "scrub", help="sweep stored media for bit rot; optionally repair"
    )
    common(p)
    p.add_argument(
        "--repair",
        action="store_true",
        help="heal what an intact source covers (chunk log or --peer "
        "replicas); without it the pass is read-only",
    )
    p.add_argument(
        "--peer",
        action="append",
        default=None,
        metavar="HOST:PORT",
        help="replica vault daemon to fetch replacement chunks from "
        "(repeatable)",
    )
    p.add_argument(
        "--limit",
        type=int,
        default=None,
        metavar="N",
        help="check at most N records this pass; the cursor resumes the "
        "next pass where this one stopped",
    )
    p.add_argument(
        "--rate",
        type=float,
        default=None,
        metavar="MB_PER_S",
        help="cap the scrub read rate (MB/s)",
    )
    p.add_argument(
        "--report-json",
        default=None,
        metavar="PATH",
        help="also write the scrub report JSON to PATH",
    )
    p.add_argument(
        "--reset-cursor",
        action="store_true",
        help="discard the saved cursor and sweep from the beginning",
    )
    telemetry_opts(p)
    p.set_defaults(func=cmd_scrub, trace=False)

    def lifecycle_opts(p):
        p.add_argument(
            "--min-age", type=int, default=1, metavar="RUNS",
            help="runs since a container was first referenced before it "
            "may go cold",
        )
        p.add_argument(
            "--min-idle", type=int, default=0, metavar="RUNS",
            help="runs since a container was last referenced before it "
            "may go cold (0 = the newest run's containers qualify too)",
        )

    p = sub.add_parser(
        "migrate", help="move aged sealed containers to the cold tier"
    )
    common(p)
    p.add_argument(
        "--cold-root", default=None, metavar="PATH",
        help="object-store bucket directory (default <vault>/cold; "
        "persisted in the catalog, so later commands re-attach it)",
    )
    lifecycle_opts(p)
    p.add_argument("--limit", type=int, default=None, metavar="N",
                   help="migrate at most N containers this pass")
    p.add_argument("--dry-run", action="store_true",
                   help="report what would move without moving anything")
    p.add_argument("--report-json", default=None, metavar="PATH",
                   help="also write the migration report JSON to PATH")
    telemetry_opts(p)
    p.set_defaults(func=cmd_migrate, trace=False)

    p = sub.add_parser(
        "tier-status", help="per-tier placement and lifecycle scores"
    )
    common(p)
    lifecycle_opts(p)
    p.add_argument("--json", default=None, metavar="PATH",
                   help="also write the tier status JSON to PATH")
    p.set_defaults(func=cmd_tier_status)

    p = sub.add_parser("recover-index", help="rebuild the index from containers")
    common(p)
    p.set_defaults(func=cmd_recover_index)

    p = sub.add_parser(
        "serve", help="host the vault for remote clients (repro.net protocol)"
    )
    common(p)
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="listening port (0 = ephemeral)")
    p.add_argument("--port-file", default=None, metavar="PATH",
                   help="write the bound port here once listening")
    p.add_argument("--node-name", default="node",
                   help="this node's name on the placement ring")
    p.add_argument(
        "--replicate-to",
        action="append",
        default=None,
        metavar="[NAME=]HOST:PORT",
        help="peer daemon to replicate sealed containers to (repeatable); "
        "enables the async replication queue",
    )
    p.add_argument("--replication-factor", type=int, default=2,
                   help="copies per container, this node included")
    p.add_argument(
        "--archive", action="store_true",
        help="archive role: accept DELTA_PUSH chains from origin vaults "
        "and serve point-in-time restores from them (DESIGN.md §15)",
    )
    p.add_argument(
        "--archive-to",
        action="append",
        default=None,
        metavar="[NAME=]HOST:PORT",
        help="archive daemon to ship per-run deltas to (repeatable); "
        "enables the async incremental-forever shipping queue",
    )
    p.add_argument(
        "--retention", default=None, metavar="SPEC",
        help="archive retention policy, e.g. keep-last=7,daily=14,"
        "weekly=8; expired points merge forward so every surviving "
        "--as-of stays restorable (implies --archive)",
    )
    p.add_argument("--drain-timeout", type=float, default=30.0,
                   metavar="SECONDS",
                   help="graceful-shutdown budget for draining in-flight "
                   "requests and the replication queue")
    p.add_argument("--max-inflight", type=int, default=64,
                   help="admission control: max concurrently executing "
                   "requests before shedding ERROR/Busy")
    p.add_argument("--max-buffered-bytes", type=int,
                   default=256 * 1024 * 1024,
                   help="admission control: max chunk payload bytes parked "
                   "in open sessions before appends shed Busy")
    p.add_argument("--session-ttl", type=float, default=900.0,
                   metavar="SECONDS",
                   help="idle sessions older than this are swept "
                   "(abandoned-client reclamation; 0 disables)")
    p.add_argument(
        "--tenant",
        action="append",
        default=None,
        metavar="NAME=TOKEN[:QUOTA_BYTES]",
        help="register a tenant (repeatable); when any are set, clients "
        "must HELLO with a matching client name + token, and each "
        "tenant's buffered session bytes are capped by its quota",
    )
    p.add_argument("--threaded", action="store_true",
                   help="use the legacy thread-per-connection core instead "
                   "of the async event loop (benchmark baseline)")
    p.add_argument(
        "--advertise",
        default=None,
        metavar="HOST:PORT",
        help="announce this node to a `repro route` front door after "
        "binding (NODE_JOIN with --node-name and the bound address)",
    )
    p.add_argument(
        "--cold-root", default=None, metavar="PATH",
        help="attach (and persist) an object-store cold tier at PATH "
        "before serving; migrated containers stay restorable remotely",
    )
    telemetry_opts(p)
    p.set_defaults(func=cmd_serve, trace=False)

    p = sub.add_parser(
        "rebuild",
        help="reconstruct a lost node's vault from surviving replicas",
    )
    p.add_argument("--vault", required=True,
                   help="empty directory to rebuild the vault into")
    p.add_argument("--node", required=True,
                   help="name of the lost node (as peers knew it)")
    p.add_argument(
        "--peer",
        action="append",
        required=True,
        metavar="[NAME=]HOST:PORT",
        help="surviving peer daemon to pull replicas from (repeatable)",
    )
    p.add_argument("--report-json", default=None, metavar="PATH",
                   help="also write the rebuild report JSON to PATH")
    p.set_defaults(func=cmd_rebuild)

    p = sub.add_parser(
        "repl-status",
        help="replication state: replica inventory + outbound queue",
    )
    common(p, remote_ok=True)
    p.add_argument("--json", default=None, metavar="PATH",
                   help="also write the status JSON to PATH")
    p.set_defaults(func=cmd_repl_status)

    p = sub.add_parser(
        "archive-status",
        help="archive state: stored delta chains + outbound shipping queue",
    )
    common(p, remote_ok=True)
    p.add_argument("--json", default=None, metavar="PATH",
                   help="also write the status JSON to PATH")
    p.set_defaults(func=cmd_archive_status)

    p = sub.add_parser(
        "route", help="run the cluster front door (hash-routed request router)"
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="listening port (0 = ephemeral)")
    p.add_argument("--port-file", default=None, metavar="PATH",
                   help="write the bound port here once listening")
    p.add_argument("--state", required=True, metavar="DIR",
                   help="directory for membership + rebalance state")
    p.add_argument(
        "--node",
        action="append",
        default=None,
        metavar="NAME=HOST:PORT",
        help="seed cluster member (repeatable); nodes can also join "
        "themselves with `serve --advertise`",
    )
    p.add_argument("--replication-factor", type=int, default=2,
                   help="replica-set size the placement ring assumes")
    p.add_argument("--probe-interval", type=float, default=2.0,
                   metavar="SECONDS", help="health-check sweep period")
    p.add_argument("--probe-timeout", type=float, default=1.0,
                   metavar="SECONDS",
                   help="per-probe connect + response budget")
    p.add_argument("--mark-down-after", type=int, default=3, metavar="K",
                   help="consecutive failed probes before a node is "
                   "marked down")
    p.add_argument("--proxy-timeout", type=float, default=60.0,
                   metavar="SECONDS",
                   help="round-trip budget per proxied frame")
    telemetry_opts(p)
    p.set_defaults(func=cmd_route, trace=False)

    p = sub.add_parser(
        "cluster-status",
        help="membership, health and rebalance progress from the router",
    )
    p.add_argument("--connect", required=True, metavar="HOST:PORT",
                   help="the `repro route` daemon to ask")
    p.add_argument("--connect-timeout", type=float, default=None,
                   metavar="SECONDS",
                   help="TCP connect budget per attempt")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="also write the status JSON to PATH")
    p.set_defaults(func=cmd_cluster_status)

    p = sub.add_parser(
        "rebalance",
        help="execute the router's pending container move plan",
    )
    p.add_argument("--route", required=True, metavar="HOST:PORT",
                   help="the `repro route` daemon planning the moves")
    p.add_argument("--connect-timeout", type=float, default=None,
                   metavar="SECONDS",
                   help="TCP connect budget per attempt")
    p.add_argument("--limit", type=int, default=None, metavar="N",
                   help="execute at most N steps this invocation (the "
                   "plan resumes where it stopped)")
    p.add_argument("--dry-run", action="store_true",
                   help="print the plan without moving anything")
    p.add_argument("--report-json", default=None, metavar="PATH",
                   help="also write the execution report JSON to PATH")
    p.set_defaults(func=cmd_rebalance)

    p = sub.add_parser(
        "trace", help="run a backup/restore with tracing and print the span tree"
    )
    trace_sub = p.add_subparsers(dest="trace_command", required=True)
    add_backup(trace_sub, trace=True)
    add_restore(trace_sub, trace=True)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if hasattr(args, "vault") and hasattr(args, "connect"):
        chosen = sum(
            1
            for value in (
                args.vault, args.connect, getattr(args, "route", None)
            )
            if value
        )
        if chosen != 1:
            # parser.error prints usage and exits EXIT_USAGE (2).
            parser.error(
                "exactly one of --vault, --connect or --route is required"
            )
    try:
        return args.func(args)
    except CorruptionError as exc:
        # THE corruption -> exit-code mapping: every command that trips
        # over rotted media funnels through this one typed handler.
        print(f"corruption: {exc}", file=sys.stderr)
        return EXIT_CORRUPTION
    except DiskFullError as exc:
        print(f"error: disk full: {exc} (free space and re-run; the "
              "interrupted work resumes)", file=sys.stderr)
        return EXIT_ERROR
    except (VaultError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR
    except (ProtocolError, ConnectionError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
