"""Command-line interface to a local DEBAR vault.

::

    python -m repro backup  --vault ~/.debar --job homedirs /data/home
    python -m repro list    --vault ~/.debar
    python -m repro restore --vault ~/.debar --run 3 --dest /restore
    python -m repro verify  --vault ~/.debar
    python -m repro audit   --vault ~/.debar --deep
    python -m repro stats   --vault ~/.debar [--telemetry]
    python -m repro trace   backup --vault ~/.debar --job homedirs /data/home
    python -m repro recover-index --vault ~/.debar

``--telemetry`` (on ``backup``, ``restore``, ``gc`` and ``stats``) turns on
the metrics registry for the invocation; ``backup``/``restore``/``gc``
persist the cumulative counters to ``<vault>/telemetry.json`` so a later
``stats --telemetry`` can report across runs.  ``trace`` wraps ``backup`` or
``restore`` and prints the span tree of the invocation.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.system.vault import DebarVault, VaultError
from repro.telemetry import enable as telemetry_enable
from repro.telemetry.export import build_snapshot, merge_snapshot_file, save_snapshot
from repro.util import fmt_bytes

#: Per-vault cumulative telemetry snapshot (counters survive across runs).
TELEMETRY_SNAPSHOT = "telemetry.json"


def _open(args) -> DebarVault:
    return DebarVault(args.vault)


def _telemetry_wanted(args) -> bool:
    return getattr(args, "telemetry", False) or getattr(args, "trace", False)


def _telemetry_begin(args):
    """Enable telemetry for this invocation (before the vault is built, so
    every component binds live instruments).  Returns (registry, tracer) or
    (None, None) when telemetry was not requested."""
    if not _telemetry_wanted(args):
        return None, None
    return telemetry_enable()


def _telemetry_finish(args, registry, tracer) -> None:
    """Fold the vault's persisted counters in, re-persist, honour --trace
    and --telemetry-json."""
    if registry is None:
        return
    path = Path(args.vault) / TELEMETRY_SNAPSHOT
    merge_snapshot_file(path, registry)
    snapshot = build_snapshot(registry, tracer)
    save_snapshot(snapshot, path)
    if getattr(args, "telemetry_json", None):
        save_snapshot(snapshot, args.telemetry_json)
        print(f"telemetry snapshot written to {args.telemetry_json}")
    if getattr(args, "trace", False):
        rendered = tracer.render()
        if rendered:
            print(rendered.rstrip("\n"))


def cmd_backup(args) -> int:
    registry, tracer = _telemetry_begin(args)
    with _open(args) as vault:
        # The timestamp comes from the vault's single clock helper
        # (repro.telemetry.clock.wall_now), not a raw time.time() here.
        run = vault.backup(args.job, args.paths)
        saved = run.logical_bytes - run.transferred_bytes
        print(
            f"run {run.run_id}: {len(run.files)} files, "
            f"{fmt_bytes(run.logical_bytes)} logical, "
            f"{fmt_bytes(run.transferred_bytes)} transferred "
            f"({fmt_bytes(saved)} filtered as duplicate)"
        )
        _telemetry_finish(args, registry, tracer)
    return 0


def cmd_list(args) -> int:
    with _open(args) as vault:
        runs = vault.runs(job=args.job)
        if not runs:
            print("no runs recorded")
            return 0
        print(f"{'run':>4}  {'job':<16} {'files':>6} {'logical':>10} {'transferred':>12}")
        for run in runs:
            print(
                f"{run.run_id:>4}  {run.job:<16} {len(run.files):>6} "
                f"{fmt_bytes(run.logical_bytes):>10} "
                f"{fmt_bytes(run.transferred_bytes):>12}"
            )
    return 0


def cmd_restore(args) -> int:
    registry, tracer = _telemetry_begin(args)
    with _open(args) as vault:
        paths = vault.restore(args.run, args.dest, strip_prefix=args.strip_prefix)
        print(f"restored {len(paths)} files to {args.dest}")
        _telemetry_finish(args, registry, tracer)
    return 0


def cmd_verify(args) -> int:
    with _open(args) as vault:
        report = vault.verify()
        print(
            f"OK: {report['fingerprints']} fingerprints across "
            f"{report['runs']} runs all resolve"
        )
    return 0


def cmd_audit(args) -> int:
    # Opening a vault creates one; an auditor must never "pass" a vault
    # it just conjured out of a mistyped path.
    if not Path(args.vault).is_dir():
        print(f"error: no vault at {args.vault}", file=sys.stderr)
        return 1
    with _open(args) as vault:
        report = vault.audit(deep=args.deep)
        print(report.summary())
    return 0 if report.ok else 1


def cmd_stats(args) -> int:
    registry, tracer = _telemetry_begin(args)
    with _open(args) as vault:
        if registry is not None:
            # Prior runs' counters accumulate under the live gauges.
            merge_snapshot_file(Path(args.vault) / TELEMETRY_SNAPSHOT, registry)
        s = vault.stats()
        print(f"runs               : {s['runs']:.0f}")
        print(f"logical protected  : {fmt_bytes(s['logical_bytes'])}")
        print(f"physical stored    : {fmt_bytes(s['physical_bytes'])}")
        print(f"compression        : {s['compression_ratio']:.2f}:1")
        print(f"containers         : {s['containers']:.0f}")
        print(f"index entries      : {s['index_entries']:.0f} "
              f"({s['index_utilization']:.1%} utilized)")
        if registry is not None:
            snapshot = build_snapshot(registry, tracer)
            if getattr(args, "telemetry_json", None):
                save_snapshot(snapshot, args.telemetry_json)
                print(f"telemetry snapshot written to {args.telemetry_json}")
            else:
                print(json.dumps(snapshot, indent=1, sort_keys=True))
    return 0


def cmd_forget(args) -> int:
    with _open(args) as vault:
        vault.forget(args.run)
        print(f"run {args.run} dropped from the catalog (space reclaimed on gc)")
    return 0


def cmd_gc(args) -> int:
    registry, tracer = _telemetry_begin(args)
    with _open(args) as vault:
        report = vault.gc(rewrite_threshold=args.rewrite_threshold)
        print(
            f"scanned {report.containers_scanned} containers: "
            f"{report.containers_removed} removed, "
            f"{report.containers_rewritten} rewritten, "
            f"{report.containers_kept_with_dead} kept with dead space; "
            f"{fmt_bytes(report.bytes_reclaimed)} reclaimed"
        )
        _telemetry_finish(args, registry, tracer)
    return 0


def cmd_recover_index(args) -> int:
    with _open(args) as vault:
        entries = vault.recover_index()
        print(f"rebuilt index from container metadata: {entries} entries")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DEBAR de-duplicating backup vault (paper reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--vault", required=True, help="vault directory")

    def telemetry_opts(p):
        p.add_argument(
            "--telemetry",
            action="store_true",
            help="collect metrics for this invocation (persisted in the vault)",
        )
        p.add_argument(
            "--telemetry-json",
            default=None,
            metavar="PATH",
            help="also write the telemetry snapshot JSON to PATH",
        )

    def add_backup(parent, trace: bool):
        p = parent.add_parser(
            "backup", help="back up files/directories under a job name"
        )
        common(p)
        p.add_argument("--job", required=True)
        p.add_argument("paths", nargs="+")
        telemetry_opts(p)
        p.set_defaults(func=cmd_backup, trace=trace)
        return p

    def add_restore(parent, trace: bool):
        p = parent.add_parser("restore", help="restore one run")
        common(p)
        p.add_argument("--run", type=int, required=True)
        p.add_argument("--dest", required=True)
        p.add_argument("--strip-prefix", default="/")
        telemetry_opts(p)
        p.set_defaults(func=cmd_restore, trace=trace)
        return p

    add_backup(sub, trace=False)

    p = sub.add_parser("list", help="list recorded runs")
    common(p)
    p.add_argument("--job", default=None)
    p.set_defaults(func=cmd_list)

    add_restore(sub, trace=False)

    p = sub.add_parser("verify", help="check every catalogued fingerprint resolves")
    common(p)
    p.set_defaults(func=cmd_verify)

    p = sub.add_parser(
        "audit", help="sweep every store invariant and report all findings"
    )
    common(p)
    p.add_argument(
        "--deep", action="store_true", help="also re-hash every referenced payload"
    )
    p.set_defaults(func=cmd_audit)

    p = sub.add_parser("stats", help="vault-level accounting")
    common(p)
    telemetry_opts(p)
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser("forget", help="drop a run from the catalog (retention)")
    common(p)
    p.add_argument("--run", type=int, required=True)
    p.set_defaults(func=cmd_forget)

    p = sub.add_parser("gc", help="reclaim space from unreferenced chunks")
    common(p)
    p.add_argument("--rewrite-threshold", type=float, default=0.5)
    telemetry_opts(p)
    p.set_defaults(func=cmd_gc)

    p = sub.add_parser("recover-index", help="rebuild the index from containers")
    common(p)
    p.set_defaults(func=cmd_recover_index)

    p = sub.add_parser(
        "trace", help="run a backup/restore with tracing and print the span tree"
    )
    trace_sub = p.add_subparsers(dest="trace_command", required=True)
    add_backup(trace_sub, trace=True)
    add_restore(trace_sub, trace=True)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except (VaultError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
