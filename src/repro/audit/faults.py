"""Fault injection for the dedup-2 pipeline (the Section 5.4 window).

A :class:`~repro.core.tpds.TwoPhaseDeduplicator` announces every dedup-2
step boundary through its ``fault_hook``; this module turns those
announcements into deterministic simulated crashes.  A crash is an
:class:`InjectedCrash` raised out of the hook, which unwinds ``dedup2``
exactly where a process kill would: state mutated before the checkpoint is
kept, everything after is lost.

Checkpoints (in dedup-2 order):

``post_sil``
    After all SIL rounds, before the checking-file screen and chunk
    storing.  Nothing persisted yet; the chunk log still holds the round's
    records.
``container_sealed``
    After each container lands in the repository, mid chunk-storing.  A
    crash here leaves chunks in the repository that neither the index nor
    the checking file knows — the auditor's ``chunk-orphaned`` finding.
``pre_siu``
    After chunk storing and the checking-file append, before SIU.  The
    paper's inline/out-of-line window: legal while the checking file
    survives, damage when it does not.
``scale_bucket``
    After each source bucket migrates during capacity scaling.  The
    original index file is untouched until the final atomic rename, so a
    crash here must leave the index exactly as before scaling began.
``post_siu``
    After SIU registered everything and drained the checking file.

The archive subsystem (repro.archive) announces three more checkpoints
through the same convention (``store.fault_hook``/``shipper.fault_hook``):

``archive_merge_prepublish``
    A merged segment is written to its temp file; the cursor names it;
    the atomic rename has not happened.  Recovery discards the temp —
    the sources (and every restore point) are untouched.
``archive_merge_precleanup``
    The merged segment is published; its shadowed sources still exist.
    Recovery deletes the sources — the merge is complete either way.
``archive_ship_preack``
    The archive accepted a ``DELTA_PUSH`` but the shipper died before
    persisting the ack.  Recovery re-pushes; the archive's tip check
    makes the duplicate a no-op, and the ack lands on the retry.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Tuple

POST_SIL = "post_sil"
CONTAINER_SEALED = "container_sealed"
PRE_SIU = "pre_siu"
SCALE_BUCKET = "scale_bucket"
POST_SIU = "post_siu"
ARCHIVE_MERGE_PREPUBLISH = "archive_merge_prepublish"
ARCHIVE_MERGE_PRECLEANUP = "archive_merge_precleanup"
ARCHIVE_SHIP_PREACK = "archive_ship_preack"

#: Every checkpoint the TPDS engine announces, in pipeline order,
#: followed by the archive subsystem's checkpoints.
CRASH_POINTS: Tuple[str, ...] = (
    POST_SIL,
    CONTAINER_SEALED,
    PRE_SIU,
    SCALE_BUCKET,
    POST_SIU,
    ARCHIVE_MERGE_PREPUBLISH,
    ARCHIVE_MERGE_PRECLEANUP,
    ARCHIVE_SHIP_PREACK,
)


class InjectedCrash(RuntimeError):
    """The simulated process kill a :class:`FaultPlan` fires."""

    def __init__(self, point: str, occurrence: int) -> None:
        super().__init__(f"injected crash at {point} (occurrence {occurrence})")
        self.point = point
        self.occurrence = occurrence


class FaultPlan:
    """Crash at the ``occurrence``-th hit of one named checkpoint.

    Install as ``tpds.fault_hook``; every checkpoint announcement is
    counted in :attr:`hits`, and the matching one raises
    :class:`InjectedCrash`.
    """

    def __init__(self, point: str, occurrence: int = 1) -> None:
        if point not in CRASH_POINTS:
            raise ValueError(f"unknown crash point {point!r}; one of {CRASH_POINTS}")
        if occurrence < 1:
            raise ValueError("occurrence must be >= 1")
        self.point = point
        self.occurrence = occurrence
        self.hits: dict = {}
        self.fired = False

    def __call__(self, point: str) -> None:
        self.hits[point] = self.hits.get(point, 0) + 1
        if not self.fired and point == self.point and self.hits[point] == self.occurrence:
            self.fired = True
            raise InjectedCrash(point, self.occurrence)


@contextmanager
def inject(tpds, point: str, occurrence: int = 1) -> Iterator[FaultPlan]:
    """Arm a crash on a TPDS engine for the duration of a ``with`` block.

    ::

        with inject(tpds, PRE_SIU):
            with pytest.raises(InjectedCrash):
                tpds.dedup2(force_siu=True)

    The previous hook is restored on exit, so a harness can crash the same
    engine repeatedly at different points.
    """
    plan = FaultPlan(point, occurrence)
    previous = tpds.fault_hook
    tpds.fault_hook = plan
    try:
        yield plan
    finally:
        tpds.fault_hook = previous
