"""Consistency auditing and fault injection for the dedup pipeline."""

from repro.audit.auditor import (
    ERROR,
    WARNING,
    AuditReport,
    Finding,
    audit_cluster,
    audit_index,
    audit_restorability,
    audit_store,
    audit_system,
    audit_tpds,
    audit_vault,
)
from repro.audit.faults import (
    CONTAINER_SEALED,
    CRASH_POINTS,
    POST_SIL,
    POST_SIU,
    PRE_SIU,
    SCALE_BUCKET,
    FaultPlan,
    InjectedCrash,
    inject,
)

__all__ = [
    "ERROR",
    "WARNING",
    "AuditReport",
    "Finding",
    "audit_cluster",
    "audit_index",
    "audit_restorability",
    "audit_store",
    "audit_system",
    "audit_tpds",
    "audit_vault",
    "CONTAINER_SEALED",
    "CRASH_POINTS",
    "POST_SIL",
    "POST_SIU",
    "PRE_SIU",
    "SCALE_BUCKET",
    "FaultPlan",
    "InjectedCrash",
    "inject",
]
