"""The consistency auditor: proves the invariants the paper relies on.

DEBAR's correctness rests on a handful of structural invariants that
nothing in the write path re-checks once they are established:

* **overflow placement** (Section 4.1) — an entry lives in its home bucket
  or, only while the home bucket is full, in an adjacent bucket.  ``lookup``
  probes neighbours *only* when the home bucket is full, so a stranded
  overflow entry is a silent false negative — and a false negative means a
  duplicate store on the next backup;
* **count caches** — the in-memory per-bucket entry counts that gate
  fullness checks must match the on-disk bucket headers;
* **index <-> repository cross-references** — every index entry points at a
  stored container that really holds its chunk, every stored chunk is
  registered in the index (or pending in the checking file inside the
  SIL -> SIU window, Section 5.4), and no fingerprint is stored twice;
* **restorability** — every fingerprint any recorded backup references
  still resolves to a stored chunk.

The auditor sweeps a :class:`~repro.core.disk_index.DiskIndex`, a chunk
repository, a checking file and the recorded file indexes and reports every
violation as a :class:`Finding`, so damage (a crash inside the SIL -> SIU
window, an interrupted capacity scaling, a buggy delete) is *pinpointed*
rather than discovered as corruption at restore time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.checking import CheckingFile
from repro.core.disk_index import DiskIndex
from repro.core.fingerprint import Fingerprint, fp_hex
from repro.durability.errors import CorruptionError

#: Finding severities.
ERROR = "error"
WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One invariant violation (or observation) from an audit sweep."""

    code: str
    severity: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - display helper
        return f"[{self.severity}] {self.code}: {self.detail}"


@dataclass
class AuditReport:
    """Everything one audit sweep found, plus coverage counters."""

    findings: List[Finding] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True iff no error-severity finding was recorded."""
        return not self.errors

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == ERROR]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == WARNING]

    def codes(self) -> List[str]:
        """Distinct finding codes, in first-seen order."""
        seen: List[str] = []
        for finding in self.findings:
            if finding.code not in seen:
                seen.append(finding.code)
        return seen

    def has(self, code: str) -> bool:
        """True iff some finding carries the given code."""
        return any(f.code == code for f in self.findings)

    def add(self, code: str, detail: str, severity: str = ERROR) -> None:
        self.findings.append(Finding(code, severity, detail))

    def count(self, key: str, amount: int = 1) -> None:
        self.counters[key] = self.counters.get(key, 0) + amount

    def merge(self, other: "AuditReport") -> "AuditReport":
        """Fold another report's findings and counters into this one."""
        self.findings.extend(other.findings)
        for key, value in other.counters.items():
            self.count(key, value)
        return self

    def summary(self) -> str:
        """Human-readable one-screen account of the sweep."""
        lines = []
        verdict = "PASS" if self.ok else "FAIL"
        lines.append(
            f"audit {verdict}: {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s)"
        )
        for key in sorted(self.counters):
            lines.append(f"  {key:<28} {self.counters[key]}")
        for finding in self.findings:
            lines.append(f"  {finding}")
        return "\n".join(lines)


# ---------------------------------------------------------------- index sweep
def audit_index(index: DiskIndex, report: Optional[AuditReport] = None) -> AuditReport:
    """Verify one disk index (or index part) against its own invariants.

    Checks, per Section 4.1: every entry is in its home bucket or — only
    while the home bucket is full — in an adjacent bucket; no fingerprint
    appears twice; every entry belongs to this index part; and the
    in-memory entry-count caches match the on-disk bucket headers.
    """
    report = report if report is not None else AuditReport()
    seen: Dict[Fingerprint, int] = {}
    label = _part_label(index)
    for k in range(index.n_buckets):
        on_disk = index.on_disk_count(k)
        cached = index._counts[k]
        if on_disk != cached:
            report.add(
                "count-cache",
                f"{label}bucket {k}: cached count {cached} != on-disk header {on_disk}",
            )
        if on_disk > index.bucket_capacity:
            report.add(
                "header-overflow",
                f"{label}bucket {k}: header count {on_disk} exceeds capacity "
                f"{index.bucket_capacity}",
            )
        bucket = index.read_bucket(k)
        report.count("buckets", 1)
        for fp, cid in bucket.entries:
            report.count("entries", 1)
            if fp in seen:
                report.add(
                    "entry-duplicate",
                    f"{label}fingerprint {fp_hex(fp)} in buckets {seen[fp]} and {k}",
                )
                continue
            seen[fp] = k
            if not index.owns(fp):
                report.add(
                    "entry-foreign",
                    f"{label}bucket {k}: fingerprint {fp_hex(fp)} belongs to "
                    "another index part",
                )
                continue
            home = index.bucket_number(fp)
            if home == k:
                continue
            if k not in index.neighbours(home):
                report.add(
                    "entry-misplaced",
                    f"{label}fingerprint {fp_hex(fp)} homed at bucket {home} "
                    f"found in non-adjacent bucket {k}",
                )
            elif index._counts[home] < index.bucket_capacity:
                report.add(
                    "entry-stranded",
                    f"{label}fingerprint {fp_hex(fp)} overflowed to bucket {k} "
                    f"but home bucket {home} is not full — lookup misses it",
                )
    total = sum(index._counts)
    if total != index.entry_count:
        report.add(
            "count-cache",
            f"{label}entry_count {index.entry_count} != bucket count sum {total}",
        )
    return report


# ------------------------------------------------------- index <-> repository
def audit_store(
    index: DiskIndex,
    repository,
    checking: Optional[CheckingFile] = None,
    report: Optional[AuditReport] = None,
) -> AuditReport:
    """Cross-reference one index (part) against the chunk repository.

    ``repository`` is anything with ``iter_containers()`` (both the
    in-memory :class:`~repro.storage.repository.ChunkRepository` and the
    on-disk :class:`~repro.storage.file_repository.FileChunkRepository`).
    Fingerprints the index part does not own are skipped — in a cluster the
    repository is shared and each part covers its own prefix.
    """
    report = report if report is not None else AuditReport()
    label = _part_label(index)
    stored: Dict[Fingerprint, int] = {}
    for container in repository.iter_containers():
        report.count("containers", 1)
        for record in container.records:
            fp = record.fingerprint
            if not index.owns(fp):
                continue
            report.count("chunks", 1)
            if fp in stored:
                report.add(
                    "duplicate-store",
                    f"{label}fingerprint {fp_hex(fp)} stored in containers "
                    f"{stored[fp]} and {container.container_id}",
                )
                continue
            stored[fp] = container.container_id
    indexed = dict(index.iter_entries())
    for fp, cid in indexed.items():
        if fp not in stored:
            report.add(
                "index-dangling",
                f"{label}index maps {fp_hex(fp)} to container {cid}, but no "
                "stored container holds that chunk",
            )
        elif stored[fp] != cid:
            report.add(
                "index-mismatch",
                f"{label}index maps {fp_hex(fp)} to container {cid}, but the "
                f"chunk is stored in container {stored[fp]}",
            )
    if checking is not None:
        for fp, cid in checking.pending().items():
            if not index.owns(fp):
                continue
            report.count("checking_pending", 1)
            if stored.get(fp) != cid:
                report.add(
                    "checking-dangling",
                    f"{label}checking file maps {fp_hex(fp)} to container "
                    f"{cid}, but the repository disagrees "
                    f"(holds {stored.get(fp)})",
                )
            elif fp in indexed:
                report.add(
                    "checking-stale",
                    f"{label}fingerprint {fp_hex(fp)} is both registered and "
                    "still pending in the checking file",
                    severity=WARNING,
                )
    for fp, cid in stored.items():
        if fp in indexed:
            continue
        if checking is not None and fp in checking:
            continue
        report.add(
            "chunk-orphaned",
            f"{label}container {cid} holds {fp_hex(fp)}, which neither the "
            "index nor the checking file knows — rebuild the index from "
            "container metadata to recover",
        )
    return report


# ------------------------------------------------------------- restorability
def _repair_hint(fp: Fingerprint, chunk_log) -> str:
    """Whether the scrubber could heal a corrupt payload, and how."""
    from repro.core.fingerprint import fingerprint as sha1

    if chunk_log is not None:
        for record in getattr(chunk_log, "_records", ()):
            if (
                record.fingerprint == fp
                and record.data is not None
                and sha1(record.data) == fp
            ):
                return (
                    "the chunk log holds an intact copy — "
                    "`repro scrub --repair` can heal it"
                )
    return (
        "no local intact copy — `repro scrub --repair --peer <replica>` "
        "may heal it from a peer"
    )


def audit_restorability(
    run_fingerprints: Iterable[Tuple[object, Iterable[Fingerprint]]],
    resolve,
    repository,
    deep: bool = False,
    report: Optional[AuditReport] = None,
    chunk_log=None,
) -> AuditReport:
    """Verify every recorded backup still restores.

    ``run_fingerprints`` yields (run label, fingerprint sequence) pairs;
    ``resolve(fp)`` maps a fingerprint to its container ID (or ``None``) —
    index plus checking file, or the cluster's owner routing.  With
    ``deep`` every referenced chunk's payload is verified (materialized
    repositories only): framed records against their stored CRC32C,
    legacy records by re-hashing against the fingerprint.  ``chunk_log``
    (when given) lets a corrupt-payload finding say whether the scrubber
    could repair it locally.
    """
    from repro.core.fingerprint import fingerprint as sha1
    from repro.durability.crc import crc32c

    report = report if report is not None else AuditReport()
    verified: Dict[Fingerprint, int] = {}
    for run_label, fps in run_fingerprints:
        report.count("runs", 1)
        for fp in fps:
            report.count("run_fingerprints", 1)
            cached = verified.get(fp)
            if cached is not None:
                continue
            cid = resolve(fp)
            if cid is None:
                report.add(
                    "chunk-unrestorable",
                    f"run {run_label}: fingerprint {fp_hex(fp)} resolves to "
                    "no container — the backup cannot be restored",
                )
                continue
            try:
                container = repository.fetch(cid)
            except KeyError:
                report.add(
                    "chunk-unrestorable",
                    f"run {run_label}: fingerprint {fp_hex(fp)} points at "
                    f"missing container {cid}",
                )
                continue
            except CorruptionError as exc:
                report.add(
                    "chunk-unrestorable",
                    f"run {run_label}: container {cid} is unreadable "
                    f"({exc}) — `repro scrub --repair` can attempt a rebuild",
                )
                continue
            if fp not in container:
                report.add(
                    "index-mismatch",
                    f"run {run_label}: container {cid} does not hold "
                    f"{fp_hex(fp)}",
                )
                continue
            if deep and container.data is not None:
                # Only materialized payloads can be checked; virtual
                # containers regenerate synthetic payloads on read.
                rec = container.record_for(fp)
                data = container.get(fp)
                if rec.crc is not None:
                    damaged = crc32c(data) != rec.crc
                else:  # legacy image: no stored CRC, re-hash instead
                    damaged = sha1(data) != fp
                if damaged:
                    report.add(
                        "payload-corrupt",
                        f"run {run_label}: payload of {fp_hex(fp)} in "
                        f"container {cid} fails its checksum at byte "
                        f"{container.data_start + rec.offset} of the image; "
                        + _repair_hint(fp, chunk_log),
                    )
                    continue
                report.count("payloads_verified", 1)
            verified[fp] = cid
    return report


# ------------------------------------------------------------- whole systems
def audit_tpds(tpds, deep: bool = False) -> AuditReport:
    """Full sweep of one TPDS engine: index, repository and checking file."""
    report = AuditReport()
    audit_index(tpds.index, report)
    audit_store(tpds.index, tpds.repository, tpds.checking, report)
    return report


def _resolver(index: DiskIndex, checking: Optional[CheckingFile]):
    def resolve(fp: Fingerprint):
        cid = index.lookup(fp)
        if cid is None and checking is not None:
            cid = checking.get(fp)
        return cid

    return resolve


def audit_vault(vault, deep: bool = False) -> AuditReport:
    """Audit a :class:`~repro.system.vault.DebarVault` end to end.

    Index invariants, index <-> container cross-references, restorability
    of every catalogued run, and durability: the live index must still be
    backed by the vault's on-disk index file with the geometry the catalog
    records (capacity scaling that silently migrated the index to memory
    is exactly the damage this check exists to catch).
    """
    from repro.storage.blockstore import FileBlockStore

    report = AuditReport()
    index = vault.tpds.index
    audit_index(index, report)
    audit_store(index, vault.repository, vault.tpds.checking, report)

    store = index.store
    if not isinstance(store, FileBlockStore):
        report.add(
            "durability",
            f"vault index is backed by {type(store).__name__}, not the "
            "on-disk index file — a restart loses every entry",
        )
    elif store.path != vault.root / "index.bin":
        report.add(
            "durability",
            f"vault index file is {store.path}, expected "
            f"{vault.root / 'index.bin'}",
        )
    if index.n_bits != vault._catalog["index_n_bits"]:
        report.add(
            "durability",
            f"catalog records index_n_bits={vault._catalog['index_n_bits']} "
            f"but the live index has n_bits={index.n_bits} — reopening the "
            "vault would attach the wrong geometry",
        )

    def runs():
        for payload in vault._catalog["runs"]:
            fps = [
                bytes.fromhex(h)
                for f in payload["files"]
                for h in f["fingerprints"]
            ]
            yield payload["run_id"], fps

    audit_restorability(
        runs(), _resolver(index, vault.tpds.checking), vault.repository, deep,
        report, chunk_log=vault.tpds.chunk_log,
    )
    return report


def audit_system(system, deep: bool = False) -> AuditReport:
    """Audit a single-server :class:`~repro.system.debar.DebarSystem`."""
    tpds = system.server.tpds
    report = audit_tpds(tpds, deep=deep)
    audit_restorability(
        system.director.metadata.iter_run_fingerprints(),
        _resolver(tpds.index, tpds.checking),
        system.repository,
        deep,
        report,
        chunk_log=tpds.chunk_log,
    )
    return report


def audit_cluster(cluster, deep: bool = False) -> AuditReport:
    """Audit every index part of a cluster plus the shared repository.

    Each server's part is swept individually (ownership violations show up
    as ``entry-foreign``); cross-references run against the shared
    repository per part; restorability resolves each fingerprint through
    its *owning* server, exactly as a restore would (Section 5.2 routing).
    """
    report = AuditReport()
    for server in cluster.servers:
        audit_index(server.index, report)
        audit_store(server.index, cluster.repository, server.tpds.checking, report)

    def resolve(fp: Fingerprint):
        owner = cluster.servers[cluster.owner_of(fp)]
        cid = owner.index.lookup(fp)
        if cid is None:
            cid = owner.tpds.checking.get(fp)
        return cid

    audit_restorability(
        cluster.director.metadata.iter_run_fingerprints(),
        resolve,
        cluster.repository,
        deep,
        report,
    )
    return report


def _part_label(index: DiskIndex) -> str:
    if index.prefix_bits:
        return f"part {index.prefix_value:#x}/{index.prefix_bits}b: "
    return ""
