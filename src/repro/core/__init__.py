"""The paper's primary contribution: the DEBAR disk index and TPDS.

Submodules
----------
fingerprint
    20-byte SHA-1 fingerprints and prefix/bucket arithmetic.
disk_index
    The sorted on-disk hash index (Section 4): overflow to adjacent buckets,
    capacity scaling and performance scaling.
index_cache
    The in-memory 2^m-bucket hash table that SIL/SIU sort fingerprints into.
preliminary_filter
    The dedup-1 in-memory filter seeded from the previous run of a job chain.
sil, siu
    Sequential index lookup / update (Section 5.2, 5.4).
checking
    The checking fingerprint file for asynchronous SIU (Section 5.4).
tpds
    Single-server orchestration of the two-phase scheme.
"""

from repro.core.fingerprint import (
    FINGERPRINT_SIZE,
    NULL_CONTAINER,
    Fingerprint,
    fingerprint,
    fp_bucket,
    fp_hex,
    SyntheticFingerprints,
)
from repro.core.disk_index import Bucket, DiskIndex, IndexFullError
from repro.core.index_cache import IndexCache
from repro.core.preliminary_filter import PreliminaryFilter, FilterDecision
from repro.core.sil import SequentialIndexLookup, LookupResult
from repro.core.siu import SequentialIndexUpdate
from repro.core.checking import CheckingFile
from repro.core.tpds import TwoPhaseDeduplicator, Dedup1Stats, Dedup2Stats

__all__ = [
    "FINGERPRINT_SIZE",
    "NULL_CONTAINER",
    "Fingerprint",
    "fingerprint",
    "fp_bucket",
    "fp_hex",
    "SyntheticFingerprints",
    "Bucket",
    "DiskIndex",
    "IndexFullError",
    "IndexCache",
    "PreliminaryFilter",
    "FilterDecision",
    "SequentialIndexLookup",
    "LookupResult",
    "SequentialIndexUpdate",
    "CheckingFile",
    "TwoPhaseDeduplicator",
    "Dedup1Stats",
    "Dedup2Stats",
]
