"""The dedup-1 preliminary filter (Section 5.1).

Index lookups are postponed to dedup-2, so dedup-1 cannot prove a chunk is
*new* — but it can prove most duplicates are duplicates.  DEBAR exploits job
chain semantics: successive runs of the same job object share most of their
data, so the filter is preloaded with the *filtering fingerprints* of the
previous run of the job (``Job_x(t_{n-1})`` filters ``Job_x(t_n)``), and
additionally catches all internal duplication within the running job.

For an incoming fingerprint ``F``:

* miss  -> ``F`` is inserted and marked *new*; its chunk ``D(F)`` must be
  transferred from the client and appended to the chunk log, and ``F`` joins
  the *undetermined fingerprint file* for dedup-2;
* hit   -> the chunk is a duplicate of something already transferred (this
  job or the previous run); it is neither transferred nor logged.

When the filter is full, victims are selected FIFO-first with LRU refresh:
entries sit in an insertion-ordered queue and a hit moves an entry to the
back, so the evicted entry is the least-recently-useful of the oldest ones
(the paper's "FIFO ... combined with the LRU replacement policy").
Evicting a *new* entry is safe because its membership in the undetermined
file was recorded at insertion time; the only cost is that a later duplicate
of it would be re-transferred and re-logged, which dedup-2's chunk-storing
pass discards.
"""

from __future__ import annotations

from collections import OrderedDict
from enum import Enum
from typing import Iterable, List, Optional

from repro.core.fingerprint import Fingerprint
from repro.telemetry.registry import MetricsRegistry, get_registry


class FilterDecision(Enum):
    """Outcome of checking one fingerprint against the preliminary filter."""

    #: Not seen before: transfer the chunk, log it, mark undetermined.
    NEW = "new"
    #: Duplicate of a filtering fingerprint or of an earlier chunk this job.
    DUPLICATE = "duplicate"


class PreliminaryFilter:
    """In-memory hash filter with FIFO+LRU replacement.

    Parameters
    ----------
    capacity:
        Maximum fingerprints held (the paper's 1 GB filter at ~24 bytes per
        node holds tens of millions; scaled runs pass smaller values).
    """

    def __init__(self, capacity: int, registry: Optional[MetricsRegistry] = None) -> None:
        if capacity < 1:
            raise ValueError("filter capacity must be positive")
        self.capacity = capacity
        # fp -> is_new flag; OrderedDict order is the FIFO/LRU queue.
        self._nodes: "OrderedDict[Fingerprint, bool]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.replaced_new = 0
        registry = registry if registry is not None else get_registry()
        self._t_hits = registry.counter(
            "prefilter.hits", "dedup-1 fingerprints filtered as duplicate"
        ).labels()
        self._t_misses = registry.counter(
            "prefilter.misses", "dedup-1 fingerprints admitted as new/undetermined"
        ).labels()
        self._t_preloaded = registry.counter(
            "prefilter.preloaded", "filtering fingerprints installed from job chains"
        ).labels()
        self._t_evictions = registry.counter(
            "prefilter.evictions", "filter entries evicted (FIFO+LRU replacement)"
        ).labels()

    # -- setup -------------------------------------------------------------------
    def preload(self, filtering_fps: Iterable[Fingerprint]) -> int:
        """Install filtering fingerprints (previous job run); returns count.

        For large jobs the caller may preload group by group in logical
        order, interleaved with :meth:`check` calls, as Section 5.1 allows.
        """
        count = 0
        for fp in filtering_fps:
            if fp in self._nodes:
                continue
            self._make_room()
            self._nodes[fp] = False
            count += 1
        self._t_preloaded.inc(count)
        return count

    # -- the filter ---------------------------------------------------------------
    def check(self, fp: Fingerprint) -> FilterDecision:
        """Classify one incoming fingerprint and update filter state."""
        if fp in self._nodes:
            self._nodes.move_to_end(fp)  # LRU refresh within the FIFO queue
            self.hits += 1
            self._t_hits.inc()
            return FilterDecision.DUPLICATE
        self._make_room()
        self._nodes[fp] = True
        self.misses += 1
        self._t_misses.inc()
        return FilterDecision.NEW

    def _make_room(self) -> None:
        while len(self._nodes) >= self.capacity:
            _, was_new = self._nodes.popitem(last=False)
            self.evictions += 1
            self._t_evictions.inc()
            if was_new:
                self.replaced_new += 1

    # -- inspection -----------------------------------------------------------------
    def new_fingerprints(self) -> List[Fingerprint]:
        """The *new*-marked fingerprints currently resident, in FIFO order.

        This is the paper's end-of-transmission collection into the
        undetermined fingerprint file; callers that record undetermined
        fingerprints eagerly (to survive eviction) use it only for stats.
        """
        return [fp for fp, is_new in self._nodes.items() if is_new]

    def __contains__(self, fp: Fingerprint) -> bool:
        return fp in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def duplicate_rate(self) -> float:
        """Fraction of checked fingerprints filtered as duplicates."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset_stats(self) -> None:
        self.hits = self.misses = self.evictions = self.replaced_new = 0
