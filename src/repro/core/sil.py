"""Sequential index lookup — SIL (Section 5.2, Figure 4).

Given a batch of undetermined fingerprints, SIL sorts them into an index
cache and makes one sequential pass over the disk index.  Each fingerprint
found on the way past is a duplicate (its node is deleted from the cache,
its container ID recorded); fingerprints still in the cache afterwards are
new to the system and flow into chunk storing.

The cost of a SIL is ``t = s / r`` — index size over sequential transfer
rate — *independent of the number of fingerprints processed*; its
efficiency is therefore ``eta = f * r / s`` fingerprints per second, which
is the quantity Figures 10, 11 and 13 sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from repro.core.disk_index import DiskIndex
from repro.core.fingerprint import Fingerprint
from repro.core.index_cache import IndexCache
from repro.simdisk.cpu import CpuModel
from repro.simdisk.disk import DiskModel
from repro.simdisk.ledger import Meter
from repro.telemetry.registry import MetricsRegistry, get_registry
from repro.telemetry.tracing import trace_span


@dataclass
class LookupResult:
    """Outcome of one SIL run."""

    #: Fingerprints found in the index, with their container IDs.
    duplicates: Dict[Fingerprint, int] = field(default_factory=dict)
    #: Cache retaining exactly the new fingerprints (container ID ``None``),
    #: handed onward to chunk storing.
    new_cache: IndexCache = field(default_factory=IndexCache)
    #: Fingerprints submitted (before batch-internal de-duplication).
    fingerprints_processed: int = 0
    #: Distinct fingerprints actually looked up.
    fingerprints_distinct: int = 0
    #: Bytes of index charged as one sequential scan.
    index_bytes_read: int = 0
    #: Distinct disk buckets that had to be parsed.
    buckets_probed: int = 0

    @property
    def new_fingerprints(self) -> int:
        return len(self.new_cache)

    @property
    def duplicate_fingerprints(self) -> int:
        return len(self.duplicates)


class SequentialIndexLookup:
    """Runs SIL against one disk index (or index part)."""

    def __init__(
        self,
        index: DiskIndex,
        cache_capacity: Optional[int] = None,
        cache_m_bits: int = 20,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.index = index
        self.cache_capacity = cache_capacity
        self.cache_m_bits = min(cache_m_bits, index.n_bits)
        registry = registry if registry is not None else get_registry()
        self._t_rounds = registry.counter(
            "sil.rounds", "sequential index lookup sweeps performed"
        ).labels()
        self._t_fps = registry.counter(
            "sil.fingerprints", "distinct fingerprints looked up by SIL"
        ).labels()
        self._t_duplicates = registry.counter(
            "sil.duplicates", "fingerprints SIL resolved as duplicates"
        ).labels()
        self._t_new = registry.counter(
            "sil.new", "fingerprints SIL resolved as new to the system"
        ).labels()
        self._t_bytes = registry.counter(
            "sil.index_bytes_read", "index bytes charged as sequential SIL scans"
        ).labels()
        self._t_buckets = registry.counter(
            "sil.buckets_probed", "disk buckets parsed during SIL sweeps"
        ).labels()

    def run(
        self,
        fingerprints: Iterable[Fingerprint],
        meter: Optional[Meter] = None,
        disk: Optional[DiskModel] = None,
        cpu: Optional[CpuModel] = None,
    ) -> LookupResult:
        """Classify a batch of fingerprints as duplicate or new.

        If the batch exceeds the cache capacity a
        :class:`~repro.core.index_cache.CacheFullError` propagates — DEBAR
        splits oversized batches into multiple SIL rounds at a higher level.
        """
        sim_clock = meter.clock if meter is not None else None
        result = LookupResult(new_cache=IndexCache(self.cache_capacity, self.cache_m_bits))
        cache = result.new_cache
        with trace_span("sil.cache_build", sim_clock=sim_clock) as span:
            for fp in fingerprints:
                result.fingerprints_processed += 1
                if not self.index.owns(fp):
                    raise ValueError(
                        f"fingerprint {fp.hex()[:12]} routed to the wrong index part"
                    )
                cache.insert(fp)  # batch-internal duplicates collapse here
            result.fingerprints_distinct = len(cache)
            span.annotate(fingerprints=result.fingerprints_distinct)

        # One sequential sweep: cache buckets arrive in disk-bucket order.
        with trace_span("sil.scan", sim_clock=sim_clock) as span:
            for bucket_no, fps in list(
                cache.by_disk_bucket(self.index.n_bits, self.index.prefix_bits)
            ):
                bucket = self.index.read_bucket(bucket_no)
                result.buckets_probed += 1
                neighbours = None
                for fp in fps:
                    cid = bucket.find(fp)
                    if cid is None and bucket.full:
                        # The entry may have overflowed to an adjacent bucket.
                        # ``neighbours`` is deduplicated: at tiny index sizes
                        # both adjacent buckets are the same bucket, probed once.
                        if neighbours is None:
                            neighbours = [
                                self.index.read_bucket(j)
                                for j in self.index.neighbours(bucket_no)
                            ]
                            result.buckets_probed += len(neighbours)
                        for neighbour in neighbours:
                            cid = neighbour.find(fp)
                            if cid is not None:
                                break
                    if cid is not None:
                        result.duplicates[fp] = cid
                        cache.remove(fp)

            result.index_bytes_read = self.index.size_bytes
            if meter is not None:
                if disk is not None:
                    meter.charge("sil.scan", disk.seq_read_time(result.index_bytes_read))
                if cpu is not None:
                    meter.charge("sil.cpu", cpu.fp_search_time(result.fingerprints_distinct))
            span.set_io(bytes_in=result.index_bytes_read)
            span.annotate(buckets=result.buckets_probed)

        self._t_rounds.inc()
        self._t_fps.inc(result.fingerprints_distinct)
        self._t_duplicates.inc(len(result.duplicates))
        self._t_new.inc(len(result.new_cache))
        self._t_bytes.inc(result.index_bytes_read)
        self._t_buckets.inc(result.buckets_probed)
        return result
