"""Sequential index update — SIU (Section 5.4).

SIU registers a batch of (fingerprint, container ID) pairs in the disk
index the same way SIL looks them up: fingerprints are sorted into an index
cache, the index is streamed once — read, merged, written back — and every
new entry lands in its home bucket on the way past.  All I/O is large and
sequential, which is what makes SIU orders of magnitude faster than random
per-fingerprint updates.

Cost: a sequential read *and* a sequential write of the whole index
(6.16 min vs SIL's 2.53 min on the paper's 32 GB index).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.disk_index import DiskIndex
from repro.core.fingerprint import Fingerprint
from repro.core.index_cache import IndexCache
from repro.simdisk.cpu import CpuModel
from repro.simdisk.disk import DiskModel
from repro.simdisk.ledger import Meter
from repro.telemetry.registry import MetricsRegistry, get_registry
from repro.telemetry.tracing import trace_span


@dataclass
class UpdateResult:
    """Outcome of one SIU run."""

    fingerprints_registered: int = 0
    #: Entries that overflowed their home bucket into a neighbour.
    overflowed: int = 0
    index_bytes_read: int = 0
    index_bytes_written: int = 0
    buckets_touched: int = 0


class SequentialIndexUpdate:
    """Runs SIU against one disk index (or index part)."""

    def __init__(self, index: DiskIndex, registry: Optional[MetricsRegistry] = None) -> None:
        self.index = index
        registry = registry if registry is not None else get_registry()
        self._t_runs = registry.counter(
            "siu.runs", "sequential index update merges performed"
        ).labels()
        self._t_registered = registry.counter(
            "siu.fingerprints_registered", "fingerprints merged into the disk index"
        ).labels()
        self._t_overflowed = registry.counter(
            "siu.overflowed", "entries spilled to adjacent buckets during SIU"
        ).labels()
        self._t_bytes_read = registry.counter(
            "siu.index_bytes_read", "index bytes charged as the SIU sequential read"
        ).labels()
        self._t_bytes_written = registry.counter(
            "siu.index_bytes_written", "index bytes charged as the SIU sequential write"
        ).labels()

    def run(
        self,
        entries: Dict[Fingerprint, int],
        meter: Optional[Meter] = None,
        disk: Optional[DiskModel] = None,
        cpu: Optional[CpuModel] = None,
        category: str = "siu",
    ) -> UpdateResult:
        """Register all entries; raises :class:`IndexFullError` if the index
        needs capacity scaling first (the caller scales and retries).

        The merge is grouped per home bucket — one read and one write per
        touched bucket — with the rare overflow entries falling back to the
        adjacent-bucket placement rule.

        ``category`` prefixes the meter charges (``siu.read`` et al.), so a
        caller reusing the mechanism outside DEBAR's dedup-2 (the DDFS
        baseline's write-buffer flush) keeps its time attributable to its
        own phase.
        """
        sim_clock = meter.clock if meter is not None else None
        result = UpdateResult()
        cache = IndexCache(m_bits=min(20, self.index.n_bits))
        for fp, cid in entries.items():
            if cid is None or cid < 0:
                raise ValueError(
                    f"fingerprint {fp.hex()[:12]} has no real container ID; "
                    "chunk storing must complete before SIU"
                )
            if not self.index.owns(fp):
                raise ValueError(
                    f"fingerprint {fp.hex()[:12]} routed to the wrong index part"
                )
            cache.insert(fp, cid)

        with trace_span(f"{category}.merge", sim_clock=sim_clock) as span:
            overflow: Dict[Fingerprint, int] = {}
            for bucket_no, fps in list(
                cache.by_disk_bucket(self.index.n_bits, self.index.prefix_bits)
            ):
                bucket = self.index.read_bucket(bucket_no)
                result.buckets_touched += 1
                room = bucket.capacity - len(bucket.entries)
                accepted, spilled = fps[:room], fps[room:]
                for fp in accepted:
                    bucket.entries.append((fp, cache.get(fp)))
                if accepted:
                    self.index.write_bucket(bucket)
                for fp in spilled:
                    overflow[fp] = cache.get(fp)

            # Overflow entries use the point-insert path (random adjacent bucket);
            # IndexFullError propagates to trigger capacity scaling upstream.
            for fp, cid in overflow.items():
                self.index.insert(fp, cid)
                result.overflowed += 1

            result.fingerprints_registered = len(cache)
            result.index_bytes_read = self.index.size_bytes
            result.index_bytes_written = self.index.size_bytes
            if meter is not None:
                if disk is not None:
                    meter.charge(f"{category}.read", disk.seq_read_time(result.index_bytes_read))
                    meter.charge(f"{category}.write", disk.seq_write_time(result.index_bytes_written))
                if cpu is not None:
                    meter.charge(f"{category}.cpu", cpu.fp_search_time(len(cache)))
            span.set_io(bytes_in=result.index_bytes_read,
                        bytes_out=result.index_bytes_written)
            span.annotate(registered=result.fingerprints_registered,
                          overflowed=result.overflowed)

        self._t_runs.inc()
        self._t_registered.inc(result.fingerprints_registered)
        self._t_overflowed.inc(result.overflowed)
        self._t_bytes_read.inc(result.index_bytes_read)
        self._t_bytes_written.inc(result.index_bytes_written)
        return result
