"""The DEBAR disk index (Section 4).

The index is a hash table of ``2^n`` fixed-size buckets stored contiguously
on disk.  A fingerprint's first ``n`` bits are its bucket number, which gives
the index its load-bearing properties:

* *uniform fingerprint distribution* — SHA-1 uniformity spreads entries
  evenly, so buckets can be filled to high utilization before overflow;
* *number-ordered fingerprint distribution* — bucket order equals numeric
  fingerprint order, which is what lets SIL/SIU stream the index
  sequentially instead of probing it randomly;
* *simple capacity scaling* — ``2^n -> 2^(n+1)`` by copying each bucket's
  entries into the two buckets addressed by one more prefix bit;
* *simple performance scaling* — splitting into ``2^w`` parts by the first
  ``w`` bits, one part per backup server.

Buckets are built from 512-byte disk blocks, each holding up to 20 entries
of 25 bytes (20-byte fingerprint + 5-byte container ID).  When a bucket
overflows, the extra entry goes to a randomly chosen adjacent bucket; a
bucket finding itself and *both* neighbours full raises
:class:`IndexFullError`, the signal the paper uses to trigger capacity
scaling (with the index then ~80-95 % utilized, Table 2).
"""

from __future__ import annotations

import random
import struct
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.core.fingerprint import (
    FINGERPRINT_SIZE,
    Fingerprint,
    validate_container_id,
    validate_fingerprint,
)
from repro.durability.crc import crc32c
from repro.durability.errors import CorruptionError
from repro.storage.blockstore import (
    BlockStore,
    FileBlockStore,
    MemoryBlockStore,
    SparseMemoryBlockStore,
)
from repro.util import bit_prefix

#: On-disk size of one index entry: fingerprint + 40-bit container ID.
ENTRY_SIZE = FINGERPRINT_SIZE + 5

#: Size of the disk blocks buckets are built from.
DISK_BLOCK_SIZE = 512

#: Entries per 512-byte disk block (the paper's "up to 20 entries").
ENTRIES_PER_BLOCK = DISK_BLOCK_SIZE // ENTRY_SIZE

#: Bucket header: a little-endian uint32 entry count.
_HEADER = struct.Struct("<I")

#: Checksummed buckets end in this trailer: magic + CRC32C of the rest.
BUCKET_MAGIC = 0x44424B54  # "DBKT"
_TRAILER = struct.Struct("<II")


class IndexFullError(Exception):
    """Raised when an insert finds a bucket and both its neighbours full.

    Per Section 4.1 this event means the index is, with high probability,
    past ~80 % utilization (for 8 KB buckets) and must be enlarged with
    :meth:`DiskIndex.scale_capacity`.
    """

    def __init__(self, bucket: int, utilization: float) -> None:
        super().__init__(
            f"bucket {bucket} and both neighbours full at utilization {utilization:.1%}"
        )
        self.bucket = bucket
        self.utilization = utilization


@dataclass
class Bucket:
    """A parsed index bucket: an ordered list of (fingerprint, container ID)."""

    number: int
    entries: List[Tuple[Fingerprint, int]]
    capacity: int

    @property
    def full(self) -> bool:
        return len(self.entries) >= self.capacity

    def find(self, fp: Fingerprint) -> Optional[int]:
        """Linear search, as in the paper's in-memory bucket scan."""
        for entry_fp, cid in self.entries:
            if entry_fp == fp:
                return cid
        return None


def pack_bucket(
    entries: List[Tuple[Fingerprint, int]], slot_size: int, checksum: bool = False
) -> bytes:
    """Serialise a bucket into its fixed-size on-disk slot.

    With ``checksum`` the slot's last 8 bytes become a ``BUCKET_MAGIC`` +
    CRC32C trailer over the rest.  For block-multiple slot sizes the entry
    capacity is unaffected: ``b`` 512-byte blocks hold ``20b`` entries in
    ``4 + 500b`` bytes, leaving at least 12 bytes of padding.
    """
    body = slot_size - _TRAILER.size if checksum else slot_size
    if _HEADER.size + len(entries) * ENTRY_SIZE > body:
        raise ValueError(f"{len(entries)} entries do not fit a {slot_size}-byte slot")
    parts = [_HEADER.pack(len(entries))]
    for fp, cid in entries:
        parts.append(fp)
        parts.append(cid.to_bytes(5, "little"))
    blob = b"".join(parts)
    blob += b"\x00" * (body - len(blob))
    if checksum:
        blob += _TRAILER.pack(BUCKET_MAGIC, crc32c(blob))
    return blob


def unpack_bucket(blob: bytes) -> List[Tuple[Fingerprint, int]]:
    """Parse a fixed-size bucket slot back into its entry list.

    A slot carrying the checksum trailer is verified first (legacy slots
    pad with zeros there, which never matches the trailer magic); damage
    raises :class:`CorruptionError`.
    """
    if len(blob) >= _TRAILER.size:
        magic, crc = _TRAILER.unpack_from(blob, len(blob) - _TRAILER.size)
        if magic == BUCKET_MAGIC and crc != crc32c(blob[: -_TRAILER.size]):
            raise CorruptionError("index bucket CRC mismatch", artifact="index")
    (count,) = _HEADER.unpack_from(blob, 0)
    entries: List[Tuple[Fingerprint, int]] = []
    off = _HEADER.size
    for _ in range(count):
        fp = blob[off : off + FINGERPRINT_SIZE]
        cid = int.from_bytes(blob[off + FINGERPRINT_SIZE : off + ENTRY_SIZE], "little")
        entries.append((fp, cid))
        off += ENTRY_SIZE
    return entries


class DiskIndex:
    """The on-disk fingerprint index.

    Parameters
    ----------
    n_bits:
        The index has ``2^n_bits`` buckets.
    bucket_bytes:
        Bucket slot size; must be a multiple of the 512-byte disk block.
        The paper selects 8 KB (320 entries) for >80 % utilization.
    store:
        Backing block store.  Defaults to an in-memory store; pass a
        :class:`~repro.storage.blockstore.FileBlockStore` for a real on-disk
        index.
    prefix_bits, prefix_value:
        For a *part* of a performance-scaled index: this part only accepts
        fingerprints whose first ``prefix_bits`` bits equal ``prefix_value``,
        and buckets are addressed by the following ``n_bits`` bits
        (Section 4.1, "simple performance scaling").
    seed:
        Seed for the random adjacent-bucket choice on overflow.
    checksummed:
        Write buckets with CRC32C trailers and verify them on read.
        Defaults to on for file-backed stores and off for memory stores.
    """

    def __init__(
        self,
        n_bits: int,
        bucket_bytes: int = 8 * 1024,
        store: Optional[BlockStore] = None,
        prefix_bits: int = 0,
        prefix_value: int = 0,
        seed: int = 0,
        checksummed: Optional[bool] = None,
    ) -> None:
        if n_bits < 1:
            raise ValueError("n_bits must be >= 1")
        if bucket_bytes % DISK_BLOCK_SIZE != 0 or bucket_bytes <= 0:
            raise ValueError("bucket_bytes must be a positive multiple of 512")
        if prefix_bits < 0:
            raise ValueError("prefix_bits must be non-negative")
        if prefix_bits + n_bits > FINGERPRINT_SIZE * 8:
            raise ValueError("prefix_bits + n_bits exceeds fingerprint width")
        if not 0 <= prefix_value < (1 << prefix_bits if prefix_bits else 1):
            raise ValueError("prefix_value out of range for prefix_bits")
        self.n_bits = n_bits
        self.bucket_bytes = bucket_bytes
        self.bucket_capacity = (bucket_bytes // DISK_BLOCK_SIZE) * ENTRIES_PER_BLOCK
        self.n_buckets = 1 << n_bits
        self.prefix_bits = prefix_bits
        self.prefix_value = prefix_value
        self._rng = random.Random(seed)
        self._seed = seed
        self._entry_count = 0
        size = self.n_buckets * bucket_bytes
        created_here = store is None
        if store is None:
            store = MemoryBlockStore(size)
        elif store.size < size:
            raise ValueError(f"block store too small: {store.size} < {size}")
        self._store = store
        # Buckets carry CRC trailers on real disks by default; memory-backed
        # indexes (simulation, tests) keep the cheap unchecksummed layout.
        self.checksummed = (
            checksummed if checksummed is not None else isinstance(store, FileBlockStore)
        )
        # Cache of per-bucket entry counts so fullness checks do not hit the
        # store; rebuilt from disk when attached to a possibly non-empty
        # store (a freshly created store is all zeros by construction).
        self._counts: List[int] = [0] * self.n_buckets
        known_empty = created_here or (
            isinstance(store, SparseMemoryBlockStore) and store.resident_bytes == 0
        )
        if not known_empty:
            self._load_counts()

    # -- construction helpers ------------------------------------------------
    def _load_counts(self) -> None:
        total = 0
        for k in range(self.n_buckets):
            blob = self._store.read(k * self.bucket_bytes, _HEADER.size)
            (count,) = _HEADER.unpack(blob)
            # A rotted header cannot claim more entries than a bucket holds;
            # clamping keeps the cache sane until scrub repairs the bucket.
            self._counts[k] = min(count, self.bucket_capacity)
            total += self._counts[k]
        self._entry_count = total

    # -- geometry --------------------------------------------------------------
    @property
    def store(self) -> BlockStore:
        """The backing block store (read-only handle for audits/persistence)."""
        return self._store

    @property
    def size_bytes(self) -> int:
        """Total on-disk size of the index."""
        return self.n_buckets * self.bucket_bytes

    @property
    def capacity_entries(self) -> int:
        """Maximum entries if every bucket were exactly full."""
        return self.n_buckets * self.bucket_capacity

    @property
    def entry_count(self) -> int:
        """Entries currently stored."""
        return self._entry_count

    @property
    def utilization(self) -> float:
        """Fraction of entry slots occupied."""
        return self._entry_count / self.capacity_entries

    def bucket_number(self, fp: Fingerprint) -> int:
        """Home bucket of a fingerprint within this index (or index part)."""
        full = bit_prefix(fp, self.prefix_bits + self.n_bits)
        if self.prefix_bits:
            if full >> self.n_bits != self.prefix_value:
                raise ValueError(
                    f"fingerprint prefix {full >> self.n_bits:#x} does not belong "
                    f"to index part {self.prefix_value:#x}"
                )
            return full & (self.n_buckets - 1)
        return full

    def owns(self, fp: Fingerprint) -> bool:
        """True iff this index (part) is responsible for ``fp``."""
        if not self.prefix_bits:
            return True
        return bit_prefix(fp, self.prefix_bits) == self.prefix_value

    # -- bucket I/O -------------------------------------------------------------
    def read_bucket(self, k: int) -> Bucket:
        """Read and parse one bucket."""
        self._check_bucket_number(k)
        blob = self._store.read(k * self.bucket_bytes, self.bucket_bytes)
        return Bucket(k, self._unpack(k, blob), self.bucket_capacity)

    def _unpack(self, k: int, blob: bytes) -> List[Tuple[Fingerprint, int]]:
        try:
            return unpack_bucket(blob)
        except CorruptionError:
            raise CorruptionError(
                f"index bucket {k} CRC mismatch",
                artifact="index", offset=k * self.bucket_bytes,
            ) from None

    def on_disk_count(self, k: int) -> int:
        """Bucket ``k``'s entry count as recorded in its on-disk header.

        Bypasses the in-memory count cache — the auditor compares the two.
        """
        self._check_bucket_number(k)
        (count,) = _HEADER.unpack(self._store.read(k * self.bucket_bytes, _HEADER.size))
        return count

    def write_bucket(self, bucket: Bucket) -> None:
        """Serialise and write one bucket back."""
        self._check_bucket_number(bucket.number)
        if len(bucket.entries) > self.bucket_capacity:
            raise ValueError("bucket over capacity")
        self._store.write(
            bucket.number * self.bucket_bytes,
            pack_bucket(bucket.entries, self.bucket_bytes, checksum=self.checksummed),
        )
        self._entry_count += len(bucket.entries) - self._counts[bucket.number]
        self._counts[bucket.number] = len(bucket.entries)

    def read_bucket_range(self, start: int, count: int) -> List[Bucket]:
        """Sequentially read ``count`` consecutive buckets (the SIL primitive).

        One call models one large sequential disk read of
        ``count * bucket_bytes`` bytes; cost accounting is the caller's job.
        """
        self._check_bucket_number(start)
        if count < 0 or start + count > self.n_buckets:
            raise ValueError("bucket range out of bounds")
        blob = self._store.read(start * self.bucket_bytes, count * self.bucket_bytes)
        out = []
        for i in range(count):
            slot = blob[i * self.bucket_bytes : (i + 1) * self.bucket_bytes]
            out.append(Bucket(start + i, self._unpack(start + i, slot), self.bucket_capacity))
        return out

    def write_bucket_range(self, buckets: List[Bucket]) -> None:
        """Sequentially write consecutive buckets back (the SIU primitive)."""
        if not buckets:
            return
        start = buckets[0].number
        for i, b in enumerate(buckets):
            if b.number != start + i:
                raise ValueError("buckets must be consecutive")
            if len(b.entries) > self.bucket_capacity:
                raise ValueError("bucket over capacity")
        blob = b"".join(
            pack_bucket(b.entries, self.bucket_bytes, checksum=self.checksummed)
            for b in buckets
        )
        self._store.write(start * self.bucket_bytes, blob)
        for b in buckets:
            self._entry_count += len(b.entries) - self._counts[b.number]
            self._counts[b.number] = len(b.entries)

    def _check_bucket_number(self, k: int) -> None:
        if not 0 <= k < self.n_buckets:
            raise ValueError(f"bucket {k} out of range [0, {self.n_buckets})")

    def neighbours(self, k: int) -> Tuple[int, ...]:
        """The adjacent buckets, wrapping at the ends.

        Distinct buckets only: with ``n_bits == 1`` the two wrap-around
        "adjacent" buckets are the same bucket, and treating it as two
        candidates would double-probe lookups and double-count it as an
        overflow target.
        """
        left, right = (k - 1) % self.n_buckets, (k + 1) % self.n_buckets
        if left == right:
            return (left,)
        return left, right

    # Backwards-compatible internal alias.
    _neighbours = neighbours

    # -- point operations --------------------------------------------------------
    def insert(self, fp: Fingerprint, container_id: int) -> int:
        """Insert one mapping; return the bucket that received it.

        Follows Section 4.1: the entry goes to its home bucket; if the home
        bucket is full, to a randomly selected adjacent bucket; if both
        neighbours are also full, :class:`IndexFullError` signals that the
        index needs capacity scaling.  Callers are responsible for not
        inserting a fingerprint twice (SIL guarantees this in DEBAR).
        """
        fp = validate_fingerprint(fp)
        validate_container_id(container_id)
        home = self.bucket_number(fp)
        target = self._placement_bucket(home)
        bucket = self.read_bucket(target)
        bucket.entries.append((fp, container_id))
        self.write_bucket(bucket)
        return target

    def _placement_bucket(self, home: int) -> int:
        """Pick the bucket an entry homed at ``home`` will actually occupy."""
        if self._counts[home] < self.bucket_capacity:
            return home
        candidates = list(self.neighbours(home))
        self._rng.shuffle(candidates)
        for k in candidates:
            if self._counts[k] < self.bucket_capacity:
                return k
        raise IndexFullError(home, self.utilization)

    def lookup(self, fp: Fingerprint) -> Optional[int]:
        """Find a fingerprint's container ID, or ``None``.

        Checks the home bucket first; because entries can overflow, a miss
        in a *full* home bucket also probes the two neighbours (a second
        random I/O in the paper's cost analysis — rare, since the fraction
        of full buckets stays below ~0.3 %, Table 2).
        """
        cid, _ = self.lookup_with_probes(fp)
        return cid

    def lookup_with_probes(self, fp: Fingerprint) -> Tuple[Optional[int], int]:
        """Like :meth:`lookup` but also report how many random disk probes
        the lookup required (for baseline cost accounting)."""
        fp = validate_fingerprint(fp)
        home = self.bucket_number(fp)
        bucket = self.read_bucket(home)
        cid = bucket.find(fp)
        if cid is not None:
            return cid, 1
        if not bucket.full:
            # An overflowed copy can only exist if the home bucket is full.
            return None, 1
        probes = 1
        for k in self.neighbours(home):
            probes += 1
            cid = self.read_bucket(k).find(fp)
            if cid is not None:
                return cid, probes
        return None, probes

    def delete(self, fp: Fingerprint) -> bool:
        """Remove a fingerprint's entry; True if it was present.

        Not part of the paper's write path (backup streams only add), but
        required by retention/garbage collection: when a chunk's last
        reference disappears and its container is reclaimed, the mapping
        must go too.  Checks the home bucket and, if that is full (so an
        overflow could have happened), the two neighbours.

        Lookup relies on the invariant *an entry overflows only while its
        home bucket is full*; deletion is the one operation that can break
        it, so after removing from a previously full bucket, one entry
        homed there is pulled back from a neighbour if any had overflowed.
        """
        fp = validate_fingerprint(fp)
        home = self.bucket_number(fp)
        for k in (home, *self.neighbours(home)):
            bucket = self.read_bucket(k)
            was_full = bucket.full
            for i, (entry_fp, _) in enumerate(bucket.entries):
                if entry_fp == fp:
                    del bucket.entries[i]
                    self.write_bucket(bucket)
                    if was_full:
                        self._pull_back_overflow(k)
                    return True
            if k == home and not was_full:
                return False
        return False

    def _pull_back_overflow(self, k: int) -> None:
        """Re-home one entry that overflowed out of bucket ``k``, if any.

        Called when ``k`` transitions full -> not-full; restores the
        overflow invariant either by leaving no stranded entries or by
        making ``k`` full again (covering any that remain).

        Pulling an entry out of a *full* neighbour transitions that
        neighbour full -> not-full in turn, which would strand anything
        that had overflowed out of *it* (two buckets from home, where
        ``lookup`` never probes).  The pull-back therefore cascades: every
        bucket this drains below capacity gets its own pull-back pass.
        """
        for neighbour in self.neighbours(k):
            bucket = self.read_bucket(neighbour)
            for i, (entry_fp, cid) in enumerate(bucket.entries):
                if self.bucket_number(entry_fp) == k:
                    was_full = bucket.full
                    del bucket.entries[i]
                    self.write_bucket(bucket)
                    target = self.read_bucket(k)
                    target.entries.append((entry_fp, cid))
                    self.write_bucket(target)
                    if was_full:
                        self._pull_back_overflow(neighbour)
                    return

    def update(self, fp: Fingerprint, container_id: int) -> bool:
        """Re-point an existing entry at a new container; True if found."""
        fp = validate_fingerprint(fp)
        validate_container_id(container_id)
        home = self.bucket_number(fp)
        for k in (home, *self.neighbours(home)):
            bucket = self.read_bucket(k)
            for i, (entry_fp, _) in enumerate(bucket.entries):
                if entry_fp == fp:
                    bucket.entries[i] = (fp, container_id)
                    self.write_bucket(bucket)
                    return True
            if k == home and not bucket.full:
                return False
        return False

    # -- whole-index operations ----------------------------------------------------
    def iter_entries(self) -> Iterator[Tuple[Fingerprint, int]]:
        """Iterate all (fingerprint, container ID) entries in bucket order."""
        for k in range(self.n_buckets):
            yield from self.read_bucket(k).entries

    def full_bucket_fraction(self) -> float:
        """Fraction of buckets at capacity (the paper's rho statistic)."""
        full = sum(1 for c in self._counts if c >= self.bucket_capacity)
        return full / self.n_buckets

    def scale_capacity(
        self,
        store: Optional[BlockStore] = None,
        checkpoint: Optional[Callable[[int], None]] = None,
    ) -> "DiskIndex":
        """Capacity scaling: build the ``2^(n+1)``-bucket successor index.

        Entries from old bucket ``k`` land in new buckets ``2k`` and
        ``2k+1`` according to their first ``n+1`` bits; entries that had
        overflowed into ``k`` from a neighbour are re-homed by their own
        bits (Section 4.1).  Re-inserting every entry by its own home bucket
        implements both rules at once.

        With no explicit ``store`` the successor keeps the old index's
        backing kind: a file-backed index is rebuilt in a sibling temporary
        file that atomically replaces the original once every entry has
        migrated, so the index never silently degrades to memory (and a
        crash mid-scale leaves the original file untouched).  ``checkpoint``
        (if given) is called with each source bucket number after its
        entries migrate — the fault-injection hook.
        """
        from repro.telemetry.registry import get_registry
        from repro.telemetry.tracing import trace_span

        registry = get_registry()
        successor = self._successor_store() if store is None else store
        part = str(self.prefix_value) if self.prefix_bits else "0"
        with trace_span("index.scale_capacity") as span:
            span.annotate(from_n_bits=self.n_bits, to_n_bits=self.n_bits + 1, part=part)
            span.set_io(bytes_in=self.size_bytes, bytes_out=2 * self.size_bytes)
            new = self._scale_into(successor, store, checkpoint)
        registry.counter(
            "index.capacity_scalings", "capacity-scaling events (bucket count doubled)"
        ).labels(part=part).inc()
        registry.gauge(
            "index.n_bits", "current bucket-count exponent per index part"
        ).labels(part=part).set(new.n_bits)
        registry.gauge(
            "index.entries", "entries registered per index part"
        ).labels(part=part).set(new.entry_count)
        return new

    def _scale_into(
        self,
        successor: Optional[BlockStore],
        store: Optional[BlockStore],
        checkpoint: Optional[Callable[[int], None]],
    ) -> "DiskIndex":
        try:
            new = DiskIndex(
                self.n_bits + 1,
                bucket_bytes=self.bucket_bytes,
                store=successor,
                prefix_bits=self.prefix_bits,
                prefix_value=self.prefix_value,
                seed=self._seed,
                checksummed=self.checksummed if store is None else None,
            )
            for k in range(self.n_buckets):
                for fp, cid in self.read_bucket(k).entries:
                    new.insert(fp, cid)
                if checkpoint is not None:
                    checkpoint(k)
        except BaseException:
            if store is None and isinstance(successor, FileBlockStore):
                successor.unlink()
            raise
        if store is None and isinstance(successor, FileBlockStore):
            # Replace the original file in one rename and reopen in place.
            original = self._store
            target = original.path
            original.close()
            successor.commit_to(target)
        return new

    def _successor_store(self) -> Optional[BlockStore]:
        """A fresh ``2^(n+1)``-bucket store of the same backing kind.

        ``None`` (for plain memory stores) defers to the default
        :class:`MemoryBlockStore` allocation in ``__init__``.
        """
        size = 2 * self.n_buckets * self.bucket_bytes
        if isinstance(self._store, FileBlockStore):
            tmp = self._store.path.with_name(self._store.path.name + ".scale")
            if tmp.exists():
                tmp.unlink()  # stale temp from an interrupted scaling
            return FileBlockStore(tmp, size)
        if isinstance(self._store, SparseMemoryBlockStore):
            return SparseMemoryBlockStore(size)
        return None

    def split(self, w_bits: int) -> List["DiskIndex"]:
        """Performance scaling: divide into ``2^w`` parts by prefix.

        Part ``k`` receives the entries whose first ``w`` bits (beyond any
        existing part prefix) equal ``k`` and addresses its buckets by the
        remaining ``n - w`` bits, ready to be placed on backup server ``k``
        (Section 4.1 / Figure 5).
        """
        if w_bits < 1 or w_bits >= self.n_bits:
            raise ValueError("w_bits must be in [1, n_bits)")
        parts = [
            DiskIndex(
                self.n_bits - w_bits,
                bucket_bytes=self.bucket_bytes,
                prefix_bits=self.prefix_bits + w_bits,
                prefix_value=(self.prefix_value << w_bits) | k,
                seed=self._seed + k + 1,
            )
            for k in range(1 << w_bits)
        ]
        for fp, cid in self.iter_entries():
            part = bit_prefix(fp, self.prefix_bits + w_bits) & ((1 << w_bits) - 1)
            parts[part].insert(fp, cid)
        return parts

    @classmethod
    def rebuild_from_entries(
        cls,
        entries: Iterable[Tuple[Fingerprint, int]],
        n_bits: int,
        bucket_bytes: int = 8 * 1024,
        **kwargs,
    ) -> "DiskIndex":
        """Disaster recovery: reconstruct an index from repository metadata.

        This is the paper's "high-cost reconstruction method ... used to
        recover a corrupted index": the caller scans the chunk repository's
        container metadata sections and feeds every (fingerprint, container)
        pair here.
        """
        index = cls(n_bits, bucket_bytes=bucket_bytes, **kwargs)
        for fp, cid in entries:
            index.insert(fp, cid)
        return index

    def snapshot(self) -> Dict[int, List[Tuple[Fingerprint, int]]]:
        """All non-empty buckets as a dict (test/debug helper)."""
        out: Dict[int, List[Tuple[Fingerprint, int]]] = {}
        for k in range(self.n_buckets):
            if self._counts[k]:
                out[k] = self.read_bucket(k).entries
        return out

    def __contains__(self, fp: Fingerprint) -> bool:
        return self.lookup(fp) is not None

    def __len__(self) -> int:
        return self._entry_count

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        part = (
            f", part {self.prefix_value:#x}/{self.prefix_bits}b" if self.prefix_bits else ""
        )
        return (
            f"DiskIndex(2^{self.n_bits} x {self.bucket_bytes}B buckets, "
            f"{self._entry_count} entries, {self.utilization:.1%} utilized{part})"
        )
