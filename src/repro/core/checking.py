"""The checking fingerprint file (Section 5.4).

With *asynchronous* SIU — one SIU servicing several SILs — a window opens
between "chunk stored in a container" and "fingerprint registered in the
disk index".  A second SIL inside that window would mis-classify such a
fingerprint as new and store its chunk again.  Each backup server therefore
keeps a checking fingerprint file:

* after every SIL, the lookup result is further de-duplicated against the
  checking file (fingerprints found there are already stored — they are
  duplicates, with known container IDs), and the surviving new fingerprints
  are appended to the file;
* after every SIU, the fingerprints just written to the disk index are
  removed from the file.

A single-server DEBAR reuses its unregistered fingerprint file for the same
check; this class implements both roles.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.core.fingerprint import Fingerprint
from repro.durability.fsshim import LocalFs


class CheckingFile:
    """Fingerprints stored in containers but not yet registered by SIU.

    With a ``path`` the pending set persists as a small JSON file rewritten
    on every mutation, which is what lets a vault that died between chunk
    storing and SIU resume without double-storing: the stored-but-
    unregistered fingerprints are right there on disk.
    """

    def __init__(
        self,
        path: Optional[Union[str, Path]] = None,
        fs: Optional[LocalFs] = None,
    ) -> None:
        self._pending: Dict[Fingerprint, int] = {}
        self._path = Path(path) if path is not None else None
        self._fs = fs if fs is not None else LocalFs()
        if self._path is not None and self._fs.exists(self._path):
            try:
                raw = json.loads(self._fs.read_file(self._path))
                self._pending = {bytes.fromhex(k): int(v) for k, v in raw.items()}
            except (ValueError, json.JSONDecodeError):
                # A torn half-written checking file is recoverable state, not
                # fatal: dedup-2 replay rebuilds it from the chunk log.
                self._pending = {}

    def _save(self) -> None:
        if self._path is None:
            return
        raw = {fp.hex(): cid for fp, cid in self._pending.items()}
        self._fs.write_file(self._path, json.dumps(raw).encode())

    def screen(self, new_fps: Iterable[Fingerprint]) -> Tuple[List[Fingerprint], Dict[Fingerprint, int]]:
        """Split a SIL "new" result into (genuinely new, already pending).

        The second element maps each already-pending fingerprint to the
        container that stores its chunk, so callers can treat it exactly
        like a SIL duplicate.
        """
        genuinely_new: List[Fingerprint] = []
        already_pending: Dict[Fingerprint, int] = {}
        for fp in new_fps:
            cid = self._pending.get(fp)
            if cid is None:
                genuinely_new.append(fp)
            else:
                already_pending[fp] = cid
        return genuinely_new, already_pending

    def append(self, stored: Dict[Fingerprint, int]) -> None:
        """Record fingerprints whose chunks chunk-storing just wrote."""
        for fp, cid in stored.items():
            if cid is None or cid < 0:
                raise ValueError(f"fingerprint {fp.hex()[:12]} has no real container ID")
            existing = self._pending.get(fp)
            if existing is not None and existing != cid:
                raise ValueError(
                    f"fingerprint {fp.hex()[:12]} pending in two containers "
                    f"({existing} and {cid}) — duplicate store"
                )
            self._pending[fp] = cid
        if stored:
            self._save()

    def registered(self, fps: Iterable[Fingerprint]) -> int:
        """Drop fingerprints that an SIU just wrote to the disk index."""
        removed = 0
        for fp in fps:
            if self._pending.pop(fp, None) is not None:
                removed += 1
        if removed:
            self._save()
        return removed

    def pending(self) -> Dict[Fingerprint, int]:
        """Snapshot of everything awaiting registration."""
        return dict(self._pending)

    def get(self, fp: Fingerprint) -> Optional[int]:
        return self._pending.get(fp)

    def __contains__(self, fp: Fingerprint) -> bool:
        return fp in self._pending

    def __len__(self) -> int:
        return len(self._pending)
