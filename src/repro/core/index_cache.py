"""The in-memory index cache used by SIL and SIU (Section 5.2, Figure 4).

Fingerprints inserted into the cache are "automatically sorted ... in the
order of their numbers": cache bucket ``k`` (first ``m`` bits) corresponds
exactly to the ``2^(n-m)`` consecutive disk-index buckets
``[k * 2^(n-m), (k+1) * 2^(n-m))``, which is what lets SIL/SIU stream the
disk index once, in order, and resolve every cached fingerprint on the way
past.

Capacity is counted in fingerprints: the paper's 1 GB cache holds about
44 million fingerprint nodes, and SIL/SIU efficiency is proportional to how
many fingerprints one index sweep serves.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.fingerprint import Fingerprint, fp_bucket
from repro.util import GB

#: Fingerprint nodes per byte of cache memory, from the paper's "using the
#: about 1GB memory cache, we can provide lookups for about 44 million
#: fingerprints" (Section 5.2).
FINGERPRINTS_PER_GB = 44_000_000

#: Sentinel container ID meaning "written to the currently open container,
#: real ID pending seal" (see chunk storing in Section 5.3).
PENDING_CONTAINER = -2


def cache_capacity_for_memory(memory_bytes: float) -> int:
    """Fingerprint capacity of an index cache of the given memory size."""
    if memory_bytes <= 0:
        raise ValueError("memory_bytes must be positive")
    return int(memory_bytes / GB * FINGERPRINTS_PER_GB)


class CacheFullError(Exception):
    """Raised when inserting into a full index cache.

    DEBAR avoids this by splitting large dedup-2 batches: each SIL round
    processes at most a cache-full of undetermined fingerprints.
    """


class IndexCache:
    """A capacity-bounded map from fingerprint to (optional) container ID.

    ``None`` means "undetermined / new, no container yet";
    :data:`PENDING_CONTAINER` means "in the open container";
    a non-negative value is a real container ID.
    """

    def __init__(self, capacity: Optional[int] = None, m_bits: int = 20) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be positive")
        if m_bits < 1:
            raise ValueError("m_bits must be >= 1")
        self.capacity = capacity
        self.m_bits = m_bits
        self._nodes: Dict[Fingerprint, Optional[int]] = {}

    # -- basic map operations ---------------------------------------------------
    def insert(self, fp: Fingerprint, container_id: Optional[int] = None) -> bool:
        """Insert a fingerprint node; returns False if it was already present
        (batch-internal duplicate — the node is kept, not overwritten)."""
        if fp in self._nodes:
            return False
        if self.capacity is not None and len(self._nodes) >= self.capacity:
            raise CacheFullError(f"index cache full at {self.capacity} fingerprints")
        self._nodes[fp] = container_id
        return True

    def get(self, fp: Fingerprint) -> Optional[int]:
        """Container ID of a cached node (None if undetermined).

        Raises ``KeyError`` if the fingerprint is not cached at all.
        """
        return self._nodes[fp]

    def set_container(self, fp: Fingerprint, container_id: int) -> None:
        """Point a cached node at a container (chunk storing's back-fill)."""
        if fp not in self._nodes:
            raise KeyError(f"fingerprint {fp.hex()[:12]} not in cache")
        self._nodes[fp] = container_id

    def remove(self, fp: Fingerprint) -> Optional[int]:
        """Delete a node (SIL removes duplicates); returns its container ID."""
        return self._nodes.pop(fp)

    def __contains__(self, fp: Fingerprint) -> bool:
        return fp in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def clear(self) -> None:
        self._nodes.clear()

    # -- ordered views -------------------------------------------------------------
    def sorted_fingerprints(self) -> List[Fingerprint]:
        """All cached fingerprints in numeric (= disk bucket) order.

        Fingerprints are big-endian byte strings, so lexicographic order is
        numeric order — sorting *is* the paper's "automatically sorted to
        the buckets of the index cache".
        """
        return sorted(self._nodes)

    def items(self) -> Iterator[Tuple[Fingerprint, Optional[int]]]:
        """All (fingerprint, container ID) nodes, unordered."""
        return iter(self._nodes.items())

    def by_disk_bucket(
        self, n_bits: int, prefix_bits: int = 0
    ) -> Iterator[Tuple[int, List[Fingerprint]]]:
        """Group cached fingerprints by their disk-index bucket, in order.

        This is the view SIL consumes while sweeping the disk index: bucket
        numbers arrive strictly increasing, so disk reads stay sequential.
        For an index *part* of a performance-scaled index, ``prefix_bits``
        is the server-prefix width and buckets are addressed by the bits
        after it — sorting by full fingerprint still yields increasing
        bucket numbers because every cached fingerprint of a part shares
        the same prefix.
        """
        mask = (1 << n_bits) - 1
        group: List[Fingerprint] = []
        current = -1
        for fp in self.sorted_fingerprints():
            k = fp_bucket(fp, prefix_bits + n_bits) & mask
            if k != current:
                if group:
                    yield current, group
                group = []
                current = k
            group.append(fp)
        if group:
            yield current, group

    def cache_bucket(self, fp: Fingerprint) -> int:
        """The cache bucket (first ``m`` bits) a fingerprint hashes to."""
        return fp_bucket(fp, self.m_bits)

    def disk_range_for_cache_bucket(self, k: int, n_bits: int) -> Tuple[int, int]:
        """Disk buckets ``[start, start+count)`` covered by cache bucket ``k``.

        Figure 4's mapping: cache bucket ``k`` maps to disk buckets
        ``k * 2^(n-m)`` through ``(k+1) * 2^(n-m) - 1``.
        """
        if n_bits < self.m_bits:
            raise ValueError("disk index must have at least as many bucket bits as the cache")
        span = 1 << (n_bits - self.m_bits)
        return k * span, span
