"""Chunk fingerprints.

DEBAR identifies a chunk by the SHA-1 hash of its content (160 bits,
Section 3.2).  A fingerprint's leading bits route it everywhere in the
system: the first ``w`` bits pick the backup server that owns it, the next
bits pick its disk-index bucket, and the first ``m`` bits pick its bucket in
the in-memory index cache and preliminary filter.

This module also implements the paper's synthetic fingerprint generator
(Section 6.2): SHA-1 over an incrementing 64-bit counter.  SHA-1 output is
uniformly random regardless of input similarity, so a counter subspace gives
a reproducible, non-colliding stream of "random" fingerprints — exactly how
the paper builds its scalability workloads.
"""

from __future__ import annotations

import hashlib
from typing import Iterator, List

from repro.util import bit_prefix

#: Size of a SHA-1 fingerprint in bytes.
FINGERPRINT_SIZE = 20

#: Container-ID sentinel meaning "identified as new, not yet stored".
#: Real container IDs are 40-bit non-negative integers (Section 3.4).
NULL_CONTAINER = -1

#: Largest valid container ID (40-bit IDs; with 8 MB containers this
#: addresses 8 EB of physical storage, per Section 3.4).
MAX_CONTAINER_ID = (1 << 40) - 1

#: A fingerprint is an immutable 20-byte string.
Fingerprint = bytes


def fingerprint(data: bytes) -> Fingerprint:
    """SHA-1 fingerprint of chunk content."""
    return hashlib.sha1(data).digest()


def fp_bucket(fp: Fingerprint, n_bits: int) -> int:
    """The paper's bucket-number function: the first ``n_bits`` of ``fp``."""
    return bit_prefix(fp, n_bits)


def fp_hex(fp: Fingerprint) -> str:
    """Short human-readable form for logs and error messages."""
    return fp.hex()[:12]


def validate_fingerprint(fp: Fingerprint) -> Fingerprint:
    """Raise ``ValueError`` unless ``fp`` is a well-formed fingerprint."""
    if not isinstance(fp, (bytes, bytearray)):
        raise ValueError(f"fingerprint must be bytes, got {type(fp).__name__}")
    if len(fp) != FINGERPRINT_SIZE:
        raise ValueError(f"fingerprint must be {FINGERPRINT_SIZE} bytes, got {len(fp)}")
    return bytes(fp)


def validate_container_id(cid: int) -> int:
    """Raise ``ValueError`` unless ``cid`` is a valid stored container ID."""
    if not isinstance(cid, int):
        raise ValueError(f"container ID must be int, got {type(cid).__name__}")
    if not 0 <= cid <= MAX_CONTAINER_ID:
        raise ValueError(f"container ID {cid} out of 40-bit range")
    return cid


class SyntheticFingerprints:
    """The paper's counter→SHA-1 fingerprint source (Section 6.2).

    The 64-bit counter value space is divided into non-intersecting
    contiguous subspaces, one per backup client, each able to produce up to
    2^58 distinct fingerprints.  Because SHA-1 is collision-resistant and
    uniform, consecutive counter values yield independent random
    fingerprints, while *re-reading a counter range reproduces the same
    fingerprints* — which is how the paper builds cross-stream duplicates
    and version-to-version sharing.

    Parameters
    ----------
    subspace:
        Which contiguous subspace of the counter space this source draws
        from (the paper uses 64 subspaces for 64 clients).
    subspace_bits:
        log2 of the subspace size (paper: 58).
    """

    def __init__(self, subspace: int = 0, subspace_bits: int = 58) -> None:
        if subspace_bits <= 0 or subspace_bits > 64:
            raise ValueError("subspace_bits must be in (0, 64]")
        n_subspaces = 1 << (64 - subspace_bits)
        if not 0 <= subspace < n_subspaces:
            raise ValueError(f"subspace must be in [0, {n_subspaces})")
        self.subspace = subspace
        self.subspace_bits = subspace_bits
        self._base = subspace << subspace_bits
        self._size = 1 << subspace_bits
        self._next = 0  # next unused offset within the subspace

    @property
    def generated(self) -> int:
        """Number of distinct fingerprints drawn so far from this subspace."""
        return self._next

    def at(self, offset: int) -> Fingerprint:
        """The fingerprint at a given counter offset within the subspace."""
        if not 0 <= offset < self._size:
            raise ValueError(f"offset {offset} outside subspace of size {self._size}")
        counter = self._base + offset
        return hashlib.sha1(counter.to_bytes(8, "big")).digest()

    def range(self, start: int, count: int) -> List[Fingerprint]:
        """The fingerprints of a contiguous counter section.

        Contiguous sections model the paper's duplicate locality: a backup
        stream re-uses "a contiguous section of the variable value space" so
        that duplicates arrive with the spatial locality SISL exploits.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        return [self.at(start + i) for i in range(count)]

    def fresh(self, count: int) -> List[Fingerprint]:
        """Draw ``count`` never-before-seen fingerprints from this subspace."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if self._next + count > self._size:
            raise ValueError("subspace exhausted")
        out = self.range(self._next, count)
        self._next += count
        return out

    def iter_fresh(self, count: int) -> Iterator[Fingerprint]:
        """Streaming variant of :meth:`fresh`."""
        for fp in self.fresh(count):
            yield fp
