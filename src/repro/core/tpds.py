"""The Two-Phase De-duplication Scheme — TPDS (Sections 2 and 5).

This module is the single-server engine: dedup-1 (preliminary filtering into
the chunk log) and dedup-2 (SIL -> chunk storing -> SIU) over one disk index
and one chunk repository.  The cluster variant (PSIL/PSIU across ``2^w``
servers) composes these same pieces in :mod:`repro.system.cluster`.

Data flow, following Figure 2:

::

    client stream --(preliminary filter)--> chunk log + undetermined fps     [dedup-1]
    undetermined fps --SIL--> index cache (new fps) + duplicates
    new fps --(checking file screen)--> genuinely new
    chunk log --(chunk storing, SISL)--> containers -> chunk repository
    unregistered fps --SIU--> disk index                                      [dedup-2]

Every phase charges simulated device time to a :class:`Meter` so that the
throughput decompositions of Figures 8-10 fall out of the ledger.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

from repro.core.checking import CheckingFile
from repro.core.disk_index import DiskIndex, IndexFullError
from repro.core.fingerprint import Fingerprint
from repro.durability.errors import DiskFullError
from repro.core.index_cache import PENDING_CONTAINER, IndexCache
from repro.core.preliminary_filter import FilterDecision, PreliminaryFilter
from repro.core.sil import SequentialIndexLookup
from repro.core.siu import SequentialIndexUpdate
from repro.simdisk import Meter, PaperRig, SimClock, paper_rig
from repro.storage.chunk_log import ChunkLog
from repro.storage.container import CONTAINER_SIZE, ContainerManager, ContainerWriter
from repro.storage.repository import ChunkRepository
from repro.core.fingerprint import FINGERPRINT_SIZE
from repro.telemetry.registry import MetricsRegistry, get_registry
from repro.telemetry.tracing import trace_span

#: A stream element: (fingerprint, chunk size) or (fingerprint, size, data).
StreamChunk = Union[Tuple[Fingerprint, int], Tuple[Fingerprint, int, bytes]]


@dataclass
class Dedup1Stats:
    """Outcome of one dedup-1 backup session."""

    logical_bytes: int = 0
    logical_chunks: int = 0
    transferred_bytes: int = 0
    transferred_chunks: int = 0
    filtered_chunks: int = 0
    filtered_bytes: int = 0
    undetermined_fingerprints: int = 0
    elapsed: float = 0.0

    @property
    def compression_ratio(self) -> float:
        """Dedup-1 data reduction: logical over transferred bytes."""
        return self.logical_bytes / self.transferred_bytes if self.transferred_bytes else float("inf")

    @property
    def throughput(self) -> float:
        """Logical bytes per simulated second."""
        return self.logical_bytes / self.elapsed if self.elapsed else float("inf")


@dataclass
class Dedup2Stats:
    """Outcome of one dedup-2 run."""

    log_bytes_processed: int = 0
    log_chunks_processed: int = 0
    new_chunks_stored: int = 0
    new_bytes_stored: int = 0
    duplicate_chunks: int = 0
    #: Chunk-log records discarded because their fingerprint was resolved as
    #: duplicate (SIL/checking) or already stored earlier in this replay.
    log_records_discarded: int = 0
    containers_written: int = 0
    sil_rounds: int = 0
    siu_performed: bool = False
    capacity_scalings: int = 0
    sil_time: float = 0.0
    storing_time: float = 0.0
    siu_time: float = 0.0
    elapsed: float = 0.0

    @property
    def compression_ratio(self) -> float:
        """Dedup-2 data reduction: log bytes in over container bytes out."""
        return self.log_bytes_processed / self.new_bytes_stored if self.new_bytes_stored else float("inf")

    @property
    def throughput(self) -> float:
        """Chunk-log bytes processed per simulated second."""
        return self.log_bytes_processed / self.elapsed if self.elapsed else float("inf")


class TwoPhaseDeduplicator:
    """One backup server's TPDS engine.

    Parameters
    ----------
    index:
        The server's disk index (or index part in a cluster).
    repository:
        The chunk repository containers are appended to.
    filter_capacity:
        Preliminary-filter capacity in fingerprints.
    cache_capacity:
        Index-cache capacity in fingerprints; oversized dedup-2 batches are
        split into multiple SIL rounds of at most this many fingerprints.
    container_bytes / materialize:
        Container geometry; ``materialize=False`` keeps payloads virtual.
    siu_every:
        Run SIU after every ``siu_every``-th dedup-2 (asynchronous SIU, one
        SIU servicing several SILs, Section 5.4).
    rig / clock:
        Device cost models and the simulated clock; pass ``rig=None`` to run
        pure logic with no time accounting.
    affinity:
        Repository placement affinity (the server number in a cluster).
    telemetry:
        Metrics registry to report pipeline counters/spans to; defaults to
        the process-wide registry (a no-op unless telemetry is enabled).
    """

    def __init__(
        self,
        index: DiskIndex,
        repository: ChunkRepository,
        *,
        filter_capacity: int = 1 << 16,
        cache_capacity: int = 1 << 20,
        container_bytes: int = CONTAINER_SIZE,
        materialize: bool = False,
        siu_every: int = 1,
        rig: Optional[PaperRig] = None,
        clock: Optional[SimClock] = None,
        affinity: Optional[int] = None,
        telemetry: Optional[MetricsRegistry] = None,
        chunk_log: Optional[ChunkLog] = None,
        checking: Optional[CheckingFile] = None,
    ) -> None:
        if siu_every < 1:
            raise ValueError("siu_every must be >= 1")
        self.index = index
        self.repository = repository
        self.filter_capacity = filter_capacity
        self.cache_capacity = cache_capacity
        self.container_bytes = container_bytes
        self.materialize = materialize
        self.siu_every = siu_every
        self.affinity = affinity
        self.rig = rig if rig is not None else paper_rig()
        self.clock = clock if clock is not None else SimClock()
        self.telemetry = telemetry if telemetry is not None else get_registry()
        self.meter = Meter(self.clock, registry=self.telemetry)
        self.container_manager = ContainerManager(repository, registry=self.telemetry)
        # Injectable persistence: the vault passes a PersistentChunkLog and a
        # file-backed CheckingFile so dedup-2 state survives crashes.
        self.chunk_log = chunk_log if chunk_log is not None else ChunkLog(registry=self.telemetry)
        self.checking = checking if checking is not None else CheckingFile()
        self._bind_instruments(self.telemetry)
        self._undetermined: List[Fingerprint] = []
        self._inflight: List[Fingerprint] = []
        self._unregistered: Dict[Fingerprint, int] = {}
        self._dedup2_since_siu = 0
        self.capacity_scalings = 0
        #: Fault-injection hook: called with a checkpoint name at each
        #: dedup-2 step boundary (see :mod:`repro.audit.faults`).  ``None``
        #: (the default) costs one attribute check per checkpoint.
        self.fault_hook: Optional[Callable[[str], None]] = None

    def _bind_instruments(self, registry: MetricsRegistry) -> None:
        """Create the pipeline's counter children once, at construction.

        Hot paths increment cached children; with telemetry disabled every
        child is the shared no-op instrument.
        """
        label = {} if self.affinity is None else {"server": str(self.affinity)}
        counter = lambda name, help_: registry.counter(name, help_).labels(**label)
        self._t_d1_sessions = counter(
            "dedup1.sessions", "dedup-1 backup sessions completed")
        self._t_d1_logical_bytes = counter(
            "dedup1.bytes_logical", "logical bytes presented to dedup-1")
        self._t_d1_transferred_bytes = counter(
            "dedup1.bytes_transferred", "bytes surviving the preliminary filter")
        self._t_d1_chunks = counter(
            "dedup1.chunks", "chunks presented to dedup-1")
        self._t_d1_filtered = counter(
            "dedup1.chunks_filtered", "chunks the preliminary filter removed")
        self._t_d2_runs = counter(
            "dedup2.runs", "dedup-2 executions")
        self._t_d2_duplicates = counter(
            "dedup2.duplicate_chunks", "chunks dedup-2 resolved as duplicates")
        self._t_d2_new_chunks = counter(
            "dedup2.new_chunks", "genuinely new chunks stored by dedup-2")
        self._t_d2_new_bytes = counter(
            "dedup2.new_bytes", "payload bytes of genuinely new chunks stored")
        self._t_d2_log_bytes = counter(
            "dedup2.log_bytes_replayed", "chunk-log bytes replayed by chunk storing")
        self._t_d2_discarded = counter(
            "dedup2.log_records_discarded", "chunk-log records discarded as duplicate")

    def _checkpoint(self, point: str) -> None:
        """Announce a dedup-2 step boundary to the fault-injection hook."""
        if self.fault_hook is not None:
            self.fault_hook(point)

    # ------------------------------------------------------------------ dedup-1
    def dedup1_backup(
        self,
        stream: Iterable[StreamChunk],
        filtering_fps: Optional[Iterable[Fingerprint]] = None,
    ) -> Tuple[Dedup1Stats, List[Fingerprint]]:
        """Run one backup session through the preliminary filter.

        Returns the session stats and the *file index* — the full fingerprint
        sequence of the stream, which the director stores to make the backup
        restorable (Section 3.3).
        """
        t0 = self.clock.now
        stats = Dedup1Stats()
        file_index: List[Fingerprint] = []
        with trace_span("dedup1", sim_clock=self.clock) as span:
            prefilter = PreliminaryFilter(self.filter_capacity, registry=self.telemetry)
            if filtering_fps is not None:
                prefilter.preload(filtering_fps)

            for element in stream:
                fp, size = element[0], element[1]
                data = element[2] if len(element) > 2 else None
                file_index.append(fp)
                stats.logical_chunks += 1
                stats.logical_bytes += size
                if prefilter.check(fp) is FilterDecision.NEW:
                    self.chunk_log.append(fp, data=data, size=size)
                    self._undetermined.append(fp)
                    stats.transferred_chunks += 1
                    stats.transferred_bytes += size
                else:
                    stats.filtered_chunks += 1
                    stats.filtered_bytes += size
            stats.undetermined_fingerprints = stats.transferred_chunks

            # Time: every fingerprint crosses the network for checking; only the
            # chunks the filter admits carry payload.  Receiving and appending to
            # the chunk log are overlapped, so the slower device gates.
            fingerprint_traffic = stats.logical_chunks * FINGERPRINT_SIZE
            net = self.rig.network.transfer_time(stats.transferred_bytes + fingerprint_traffic)
            log_write = self.rig.log_disk.append_write_time(
                stats.transferred_bytes + stats.transferred_chunks * FINGERPRINT_SIZE
            )
            self.meter.charge("dedup1.pipeline", max(net, log_write))
            self.meter.record("dedup1.network", net)
            self.meter.charge("dedup1.cpu", self.rig.cpu.filter_probe_time(stats.logical_chunks))
            span.set_io(bytes_in=stats.logical_bytes, bytes_out=stats.transferred_bytes)
            span.annotate(chunks=stats.logical_chunks, filtered=stats.filtered_chunks)
        stats.elapsed = self.clock.now - t0
        self._t_d1_sessions.inc()
        self._t_d1_logical_bytes.inc(stats.logical_bytes)
        self._t_d1_transferred_bytes.inc(stats.transferred_bytes)
        self._t_d1_chunks.inc(stats.logical_chunks)
        self._t_d1_filtered.inc(stats.filtered_chunks)
        return stats, file_index

    @property
    def undetermined_count(self) -> int:
        """Fingerprints awaiting dedup-2."""
        return len(self._undetermined)

    @property
    def unregistered_count(self) -> int:
        """Stored fingerprints awaiting SIU registration."""
        return len(self._unregistered)

    # ------------------------------------------------------------------ dedup-2
    def dedup2(self, force_siu: Optional[bool] = None) -> Dedup2Stats:
        """Run dedup-2 over everything accumulated since the last run.

        ``force_siu`` overrides the asynchronous-SIU policy: ``True`` always
        runs SIU at the end, ``False`` never does, ``None`` follows
        ``siu_every``.
        """
        t0 = self.clock.now
        stats = Dedup2Stats()

        with trace_span("dedup2", sim_clock=self.clock) as span:
            new_cache = self._run_sil_rounds(stats)
            self._checkpoint("post_sil")
            self._screen_against_checking(new_cache, stats)
            try:
                stored = self._chunk_storing(new_cache, stats)
            except DiskFullError as exc:
                self._abort_on_full(exc)
                raise
            self._inflight = []
            # The checking file already saw each container's batch at seal
            # time; here the stored set only joins the SIU backlog.
            self._unregistered.update(stored)
            self._checkpoint("pre_siu")

            self._dedup2_since_siu += 1
            run_siu = (
                force_siu
                if force_siu is not None
                else self._dedup2_since_siu >= self.siu_every
            )
            if run_siu and self._unregistered:
                self._run_siu(stats)
            stats.capacity_scalings = self.capacity_scalings
            span.set_io(bytes_in=stats.log_bytes_processed,
                        bytes_out=stats.new_bytes_stored)
            span.annotate(
                sil_rounds=stats.sil_rounds,
                duplicates=stats.duplicate_chunks,
                new_chunks=stats.new_chunks_stored,
                siu=stats.siu_performed,
            )
        stats.elapsed = self.clock.now - t0
        self._t_d2_runs.inc()
        self._t_d2_duplicates.inc(stats.duplicate_chunks)
        self._t_d2_new_chunks.inc(stats.new_chunks_stored)
        self._t_d2_new_bytes.inc(stats.new_bytes_stored)
        self._t_d2_log_bytes.inc(stats.log_bytes_processed)
        self._t_d2_discarded.inc(stats.log_records_discarded)
        return stats

    # -- dedup-2 internals --------------------------------------------------------
    def _abort_on_full(self, exc: DiskFullError) -> None:
        """Make an ENOSPC abort clean and resumable (Section 5.4 spirit).

        The chunk log was not cleared, so every record is still replayable.
        Chunks that *did* land in sealed containers join the checking file
        (they are stored, just unregistered); the undetermined backlog goes
        back so the next ``dedup2`` re-runs SIL, screens the partial set as
        pending duplicates, and stores only what is missing — no chunk is
        ever stored twice.
        """
        if exc.stored:
            self.checking.append(exc.stored)
            self._unregistered.update(exc.stored)
        self._undetermined = self._inflight + self._undetermined
        self._inflight = []

    def _run_sil_rounds(self, stats: Dedup2Stats) -> IndexCache:
        """SIL over the undetermined set, split into cache-sized batches."""
        merged = IndexCache(m_bits=min(20, self.index.n_bits))
        pending = self._undetermined
        self._undetermined = []
        self._inflight = pending
        sil = SequentialIndexLookup(
            self.index, cache_capacity=self.cache_capacity, registry=self.telemetry
        )
        sil_t0 = self.clock.now
        with trace_span("dedup2.sil", sim_clock=self.clock) as span:
            for start in range(0, len(pending), self.cache_capacity):
                batch = pending[start : start + self.cache_capacity]
                result = sil.run(
                    batch, meter=self.meter, disk=self.rig.index_disk, cpu=self.rig.cpu
                )
                stats.sil_rounds += 1
                stats.duplicate_chunks += len(result.duplicates)
                for fp, _ in result.new_cache.items():
                    if not merged.insert(fp):
                        # A fingerprint split across two SIL rounds is "new" in
                        # both; the merge resolves the later sighting as a
                        # duplicate so the stats agree with the chunk-log
                        # replay, which stores it once and discards the rest.
                        stats.duplicate_chunks += 1
            span.annotate(rounds=stats.sil_rounds, fingerprints=len(pending))
        stats.sil_time = self.clock.now - sil_t0
        return merged

    def _screen_against_checking(self, cache: IndexCache, stats: Dedup2Stats) -> None:
        """Remove fingerprints already stored but not yet SIU-registered."""
        new_fps = [fp for fp, _ in cache.items()]
        _, already_pending = self.checking.screen(new_fps)
        for fp in already_pending:
            cache.remove(fp)
            stats.duplicate_chunks += 1

    def _chunk_storing(self, cache: IndexCache, stats: Dedup2Stats) -> Dict[Fingerprint, int]:
        """Replay the chunk log, packing new chunks into SISL containers.

        Returns the unregistered fingerprint file: fp -> container ID for
        every chunk stored this round.
        """
        t0 = self.clock.now
        writer = ContainerWriter(self.container_bytes, materialize=self.materialize)
        pending_fps: List[Fingerprint] = []
        stored: Dict[Fingerprint, int] = {}
        new_bytes = 0

        def seal_current() -> None:
            nonlocal writer
            if not len(writer):
                return
            try:
                container = self.container_manager.store(writer, affinity=self.affinity)
            except DiskFullError as exc:
                # Report what landed before the disk filled so the abort
                # handler can mark it stored-but-unregistered.
                exc.stored = dict(stored)
                raise
            sealed = {fp: container.container_id for fp in pending_fps}
            for fp in pending_fps:
                cache.set_container(fp, container.container_id)
                stored[fp] = container.container_id
            # Close the Section 5.4 window at the earliest possible moment:
            # the checking file learns about these chunks as soon as their
            # container is durable, so a crash between this seal and SIU
            # cannot lead the recovery replay to store them a second time.
            self.checking.append(sealed)
            pending_fps.clear()
            stats.containers_written += 1
            writer = ContainerWriter(self.container_bytes, materialize=self.materialize)
            self._checkpoint("container_sealed")

        with trace_span("dedup2.store", sim_clock=self.clock) as span:
            for record in self.chunk_log.replay():
                stats.log_chunks_processed += 1
                stats.log_bytes_processed += record.log_bytes
                if record.fingerprint not in cache:
                    stats.log_records_discarded += 1
                    continue
                cid = cache.get(record.fingerprint)
                if cid is not None:
                    # PENDING or already sealed: a later copy of a chunk stored
                    # this round — discard (Section 5.3's "otherwise discards").
                    stats.log_records_discarded += 1
                    continue
                if not writer.fits(record.size):
                    seal_current()
                if not writer.add(record.fingerprint, data=record.data, size=record.size):
                    raise ValueError(
                        f"chunk of {record.size} bytes cannot fit an empty "
                        f"{self.container_bytes}-byte container"
                    )
                cache.set_container(record.fingerprint, PENDING_CONTAINER)
                pending_fps.append(record.fingerprint)
                stats.new_chunks_stored += 1
                new_bytes += record.size
            seal_current()
            stats.new_bytes_stored = new_bytes

            # Sequential log replay overlapped with container appends: the
            # slower stream gates (log read dominates at equal rates since the
            # log carries duplicates the containers do not).
            log_read = self.rig.log_disk.seq_read_time(stats.log_bytes_processed)
            container_write = self.rig.repository_disk.append_write_time(
                stats.containers_written * self.container_bytes
            )
            self.meter.charge("store.pipeline", max(log_read, container_write))
            self.chunk_log.clear()
            span.set_io(bytes_in=stats.log_bytes_processed, bytes_out=stats.new_bytes_stored)
            span.annotate(containers=stats.containers_written,
                          discarded=stats.log_records_discarded)
        stats.storing_time = self.clock.now - t0
        return stored

    def _run_siu(self, stats: Dedup2Stats) -> None:
        """SIU over the accumulated unregistered fingerprints, scaling the
        index capacity and retrying on overflow."""
        t0 = self.clock.now
        # Skip entries already registered: a crashed SIU attempt may have
        # landed part of the unregistered file before overflowing (the
        # per-bucket writes are not transactional), and re-registering
        # those on retry would duplicate their index entries.
        entries = {
            fp: cid
            for fp, cid in self._unregistered.items()
            if self.index.lookup(fp) is None
        }
        with trace_span("dedup2.siu", sim_clock=self.clock) as span:
            while True:
                try:
                    SequentialIndexUpdate(self.index, registry=self.telemetry).run(
                        entries, meter=self.meter, disk=self.rig.index_disk, cpu=self.rig.cpu
                    )
                    break
                except IndexFullError:
                    self._scale_index_capacity()
                    # Retry only what did not land before the overflow.
                    entries = {
                        fp: cid for fp, cid in entries.items() if self.index.lookup(fp) is None
                    }
            span.annotate(registered=len(self._unregistered))
        self.checking.registered(self._unregistered)
        self._unregistered.clear()
        self._dedup2_since_siu = 0
        stats.siu_performed = True
        stats.siu_time = self.clock.now - t0
        self._checkpoint("post_siu")

    def _scale_index_capacity(self) -> None:
        """Capacity scaling (Section 4.1): double the bucket count.

        Charged as one sequential read of the old index plus one sequential
        write of the new, which is what the bucket-copying procedure costs.
        ``scale_capacity`` keeps the backing store kind (a file-backed
        index stays file-backed) and announces each migrated bucket to the
        fault-injection hook.
        """
        old = self.index
        self.meter.charge("scale.read", self.rig.index_disk.seq_read_time(old.size_bytes))
        self.index = old.scale_capacity(
            checkpoint=lambda k: self._checkpoint("scale_bucket")
        )
        self.meter.charge(
            "scale.write", self.rig.index_disk.seq_write_time(self.index.size_bytes)
        )
        self.capacity_scalings += 1

    # ---------------------------------------------------------- cluster hooks
    # PSIL/PSIU (Section 5.2's parallel variants) run the same SIL, chunk
    # storing and SIU machinery but interleave fingerprint exchanges between
    # servers; these entry points expose the individual steps to
    # :class:`repro.system.cluster.DebarCluster`.

    def drain_undetermined(self) -> List[Fingerprint]:
        """Take (and clear) the undetermined fingerprint backlog."""
        fps = self._undetermined
        self._undetermined = []
        return fps

    def store_from_log(
        self, new_fps: Iterable[Fingerprint]
    ) -> Tuple[Dict[Fingerprint, int], Dedup2Stats]:
        """Chunk storing for an externally computed set of new fingerprints.

        In PSIL the lookup happened on the owning servers; this server then
        replays its own chunk log keeping exactly ``new_fps``.  Returns the
        (fingerprint -> container ID) pairs stored plus storing stats.
        """
        stats = Dedup2Stats()
        cache = IndexCache(m_bits=min(20, self.index.n_bits))
        for fp in new_fps:
            cache.insert(fp)
        stored = self._chunk_storing(cache, stats)
        return stored, stats

    def accept_unregistered(self, entries: Dict[Fingerprint, int]) -> None:
        """Receive stored-elsewhere entries this server's index part owns:
        they join the checking file and await the next SIU."""
        self.checking.append(entries)
        self._unregistered.update(entries)

    def run_siu_now(self) -> Dedup2Stats:
        """Run SIU immediately over the accumulated unregistered entries."""
        stats = Dedup2Stats()
        if self._unregistered:
            self._run_siu(stats)
        return stats

    # ------------------------------------------------------------------ queries
    def physical_chunk_bytes(self) -> int:
        """Payload bytes stored across the repository."""
        return self.repository.stored_chunk_bytes
