"""Capacity/throughput models behind Figures 10, 11 and 12.

These are the paper's own back-of-envelope laws made executable:

* SIL time is one sequential scan of the index, SIU one scan plus one
  write-back — both independent of the fingerprint count (Figure 10);
* SIL/SIU *efficiency* is cache-fingerprints over scan time, ``eta = f*r/s``
  (Figure 11), against random lookups/updates pinned at the disk's IOPS;
* single-server DEBAR throughput vs capacity (Figure 12) follows from
  amortising SIL/SIU scans over the days it takes to fill the index cache,
  while DDFS throughput collapses once its fixed-size Bloom filter's
  false-positive rate starts converting new chunks into random index I/O.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.baselines.bloom import bloom_false_positive_rate
from repro.core.index_cache import cache_capacity_for_memory
from repro.core.fingerprint import FINGERPRINT_SIZE
from repro.core.disk_index import DISK_BLOCK_SIZE, ENTRIES_PER_BLOCK
from repro.simdisk import PaperRig, paper_rig
from repro.simdisk.disk import DiskModel
from repro.util import GB


# -- Figure 10/11 primitives -----------------------------------------------------
def sil_time(index_bytes: float, disk: Optional[DiskModel] = None) -> float:
    """One SIL: a sequential read of the whole index."""
    disk = disk if disk is not None else paper_rig().index_disk
    return disk.seq_read_time(index_bytes)


def siu_time(index_bytes: float, disk: Optional[DiskModel] = None) -> float:
    """One SIU: a sequential read plus a sequential write of the index."""
    disk = disk if disk is not None else paper_rig().index_disk
    return disk.seq_read_time(index_bytes) + disk.seq_write_time(index_bytes)


def sil_efficiency(
    index_bytes: float, cache_memory_bytes: float, disk: Optional[DiskModel] = None
) -> float:
    """Fingerprints per second of one cache-full SIL (``eta = f*r/s``)."""
    return cache_capacity_for_memory(cache_memory_bytes) / sil_time(index_bytes, disk)


def siu_efficiency(
    index_bytes: float, cache_memory_bytes: float, disk: Optional[DiskModel] = None
) -> float:
    """Fingerprints per second of one cache-full SIU."""
    return cache_capacity_for_memory(cache_memory_bytes) / siu_time(index_bytes, disk)


def random_lookup_speed(disk: Optional[DiskModel] = None) -> float:
    """Random on-disk lookups per second (the paper's measured 522 fps)."""
    disk = disk if disk is not None else paper_rig().index_disk
    return disk.random_iops


def random_update_speed(disk: Optional[DiskModel] = None) -> float:
    """Random on-disk updates per second (read-modify-write: two I/Os)."""
    disk = disk if disk is not None else paper_rig().index_disk
    return disk.random_iops / 2


def index_supported_capacity(
    index_bytes: float, chunk_size: int = 8 * 1024, utilization: float = 1.0
) -> float:
    """Physical backup bytes an index of a given size can address.

    The paper's rule: a 512-byte block holds 20 entries, so a 32 GB index
    maps ``2^26 * 20`` fingerprints — 10 TB of 8 KB chunks at full
    utilization (Section 5.2); Figure 12 labels capacities at a ~6.5 TB/32 GB
    ratio reflecting realistic utilization.
    """
    entries = index_bytes / DISK_BLOCK_SIZE * ENTRIES_PER_BLOCK * utilization
    return entries * chunk_size


# -- Figure 12 workload abstraction ---------------------------------------------------
@dataclass(frozen=True)
class WorkloadRates:
    """Steady-state daily rates of a backup workload (HUSt-like defaults).

    Defaults approximate the paper's experiment: ~583 GB logical per day,
    dedup-1 reducing ~3.6:1 into the chunk log, ~10 % of logical data new.
    """

    logical_bytes_per_day: float = 583 * GB
    chunk_size: int = 8 * 1024
    dedup1_ratio: float = 3.6
    #: New fingerprints per undetermined fingerprint: the paper ran 5 SIUs
    #: per 14 SILs over the month, i.e. ~0.36 cache-fulls of new entries per
    #: cache-full looked up.
    new_fraction_of_log: float = 0.36
    #: LPC leakage on the inline DDFS path; DDFS eliminates >99 % of index
    #: lookups (the paper measures 99.3 % on its restore path).
    lpc_miss_rate: float = 0.001

    @property
    def log_bytes_per_day(self) -> float:
        return self.logical_bytes_per_day / self.dedup1_ratio

    @property
    def undetermined_fps_per_day(self) -> float:
        return self.log_bytes_per_day / self.chunk_size

    @property
    def new_fps_per_day(self) -> float:
        return self.undetermined_fps_per_day * self.new_fraction_of_log

    @property
    def logical_chunks_per_day(self) -> float:
        return self.logical_bytes_per_day / self.chunk_size


class DebarCapacityModel:
    """Single-server DEBAR daily throughput as a function of index size."""

    def __init__(
        self,
        cache_memory_bytes: float = 1 * GB,
        rig: Optional[PaperRig] = None,
    ) -> None:
        self.cache_fps = cache_capacity_for_memory(cache_memory_bytes)
        self.rig = rig if rig is not None else paper_rig()

    def daily_times(self, index_bytes: float, rates: WorkloadRates) -> Tuple[float, float]:
        """(dedup-1 seconds/day, dedup-2 seconds/day)."""
        fp_traffic = rates.logical_chunks_per_day * FINGERPRINT_SIZE
        dedup1 = max(
            self.rig.network.transfer_time(rates.log_bytes_per_day + fp_traffic),
            self.rig.log_disk.append_write_time(rates.log_bytes_per_day),
        )
        storing = self.rig.log_disk.seq_read_time(rates.log_bytes_per_day)
        sil_per_day = rates.undetermined_fps_per_day / self.cache_fps
        siu_per_day = rates.new_fps_per_day / self.cache_fps
        dedup2 = (
            storing
            + sil_per_day * sil_time(index_bytes, self.rig.index_disk)
            + siu_per_day * siu_time(index_bytes, self.rig.index_disk)
        )
        return dedup1, dedup2

    def throughput(self, index_bytes: float, rates: Optional[WorkloadRates] = None) -> Tuple[float, float]:
        """(total, dedup-2) bytes/second — Figure 12's DEBAR curves."""
        rates = rates if rates is not None else WorkloadRates()
        dedup1, dedup2 = self.daily_times(index_bytes, rates)
        total = rates.logical_bytes_per_day / (dedup1 + dedup2)
        dedup2_tp = rates.log_bytes_per_day / dedup2
        return total, dedup2_tp


class DdfsCapacityModel:
    """DDFS daily throughput as stored data outgrows its Bloom filter."""

    def __init__(
        self,
        bloom_bits: float = 8 * GB,  # 1 GB of memory
        k_hashes: int = 4,
        index_bytes: float = 32 * GB,
        inline_lookup_concurrency: float = 2.5,
        rig: Optional[PaperRig] = None,
    ) -> None:
        self.bloom_bits = bloom_bits
        self.k_hashes = k_hashes
        self.index_bytes = index_bytes
        # An inline backup stream is latency-bound on its random probes: it
        # keeps only a few outstanding, so the 8-disk RAID's aggregate IOPS
        # (the 522/s of the *offline* Figure 11 measurement) is mostly
        # unavailable.  This is what turns a few-percent Bloom false-positive
        # rate into the Figure 12 cliff.
        self.inline_lookup_concurrency = inline_lookup_concurrency
        self.rig = rig if rig is not None else paper_rig()
        # 256 MB write buffer of 25-byte entries, per the paper's setup.
        self.write_buffer_fps = 256 * 1024 * 1024 / 25

    def false_positive_rate(self, stored_fps: float) -> float:
        return bloom_false_positive_rate(self.bloom_bits, stored_fps, self.k_hashes)

    def throughput(self, stored_fps: float, rates: Optional[WorkloadRates] = None) -> float:
        """Bytes/second of inline backup at a given system fill level."""
        rates = rates if rates is not None else WorkloadRates()
        new_chunks = rates.new_fps_per_day
        dup_chunks = rates.logical_chunks_per_day - new_chunks
        fp_traffic = rates.logical_chunks_per_day * FINGERPRINT_SIZE
        net = self.rig.network.transfer_time(rates.logical_bytes_per_day + fp_traffic)
        # Random index probes: LPC misses among duplicates + Bloom false
        # positives among new chunks (each triggering a futile lookup), plus
        # one container prefetch per LPC miss that resolves.
        p_fp = self.false_positive_rate(stored_fps)
        lookups = rates.lpc_miss_rate * dup_chunks + p_fp * new_chunks
        random_io = (
            lookups
            * self.rig.index_disk.random_io_time
            / self.inline_lookup_concurrency
        )
        flushes = new_chunks / self.write_buffer_fps
        flush_time = flushes * siu_time(self.index_bytes, self.rig.index_disk)
        seconds = net + random_io + flush_time
        return rates.logical_bytes_per_day / seconds
