"""The Section 6.2 multi-server experiments (Figures 13, 14, 15).

Scaling strategy: throughput and PSIL/PSIU speed are ratios of *volumes*
to *device times*, and both scale together.  We shrink every volume —
index part size, index-cache fingerprints, version sizes — by one factor
``sigma`` (default 1/2048) while the device models stay paper-calibrated,
so aggregate speeds and throughputs come out at paper magnitude.  The only
non-scaling terms are fixed positioning/RTT latencies, which contribute a
few percent at this sigma (and zero at sigma = 1).

The paper's setup being reproduced: ``2^w`` backup servers, each with a
1 GB index cache and an index *part* of 32–512 GB; 4 backup clients per
server; synthetic fingerprint streams of 10 x 50 GB versions per client
with ~90 % duplicates of which ~30 points are cross-stream (Section 6.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.index_cache import FINGERPRINTS_PER_GB
from repro.director.scheduler import Dedup2Policy
from repro.server import BackupServerConfig
from repro.system import DebarCluster
from repro.util import GB, KB, MB
from repro.workloads import SyntheticConfig, SyntheticUniverse

#: Default volume scale: 1/2048 of the paper's byte volumes.
SIGMA = 1.0 / 2048

#: The paper's per-server index cache (1 GB ~ 44 M fingerprints).
CACHE_FPS_PAPER = FINGERPRINTS_PER_GB

#: The paper's per-client version size: 50 GB of 8 KB chunks.
VERSION_CHUNKS_PAPER = 50 * GB // (8 * KB)


def scaled_cluster(
    w_bits: int,
    part_modeled_bytes: float,
    sigma: float = SIGMA,
    container_bytes: int = 8 * MB,
    bucket_bytes: int = 512,
    lpc_containers: int = 64,
) -> DebarCluster:
    """A cluster whose per-server geometry is ``sigma`` times the paper's."""
    if sigma <= 0 or sigma > 1:
        raise ValueError("sigma must be in (0, 1]")
    part_bytes = int(part_modeled_bytes * sigma)
    n_buckets = max(4, part_bytes // bucket_bytes)
    n_bits = max(2, (n_buckets - 1).bit_length())
    cache_fps = max(256, int(CACHE_FPS_PAPER * sigma))
    config = BackupServerConfig(
        index_n_bits=n_bits,
        index_bucket_bytes=bucket_bytes,
        container_bytes=container_bytes,
        filter_capacity=max(1024, 4 * cache_fps),
        cache_capacity=cache_fps,
        lpc_containers=lpc_containers,
        siu_every=2,
        materialize=False,
        sparse_index=True,
    )
    return DebarCluster(
        w_bits=w_bits,
        config=config,
        policy=Dedup2Policy(undetermined_threshold=cache_fps),
    )


# ---------------------------------------------------------------- Figure 13
@dataclass
class PsilPsiuPoint:
    """One Figure 13 point: speeds at a given total index size."""

    total_index_modeled_bytes: float
    psil_kfps: float
    psiu_kfps: float
    fingerprints: int


def measure_psil_psiu(
    part_modeled_bytes: float,
    w_bits: int = 4,
    sigma: float = SIGMA,
    sweep_fraction: float = 0.9,
) -> PsilPsiuPoint:
    """Measure aggregate PSIL/PSIU speed with full index-cache sweeps.

    Every server receives ~one cache-full of fresh fingerprints — the
    regime the paper measures (efficiency = fingerprints per sweep over
    sweep time).  ``sweep_fraction`` leaves headroom so that the binomial
    spread of the prefix exchange does not push any owner past one
    cache-full, which would force a second sweep and halve the speed.
    Then the cluster runs one dedup-2 with PSIU forced.
    """
    cluster = scaled_cluster(w_bits, part_modeled_bytes, sigma)
    per_server = max(64, int(cluster.config.cache_capacity * sweep_fraction))
    universe = SyntheticUniverse(
        SyntheticConfig(n_streams=cluster.n_servers, dup_fraction=0.0, cross_fraction=0.0)
    )
    assignments = []
    for k in range(cluster.n_servers):
        job = cluster.director.define_job(f"sweep-{k}", f"client-{k}", [])
        sections = universe.next_version(k, per_server)
        assignments.append((job, list(universe.version_stream(sections))))
    cluster.backup_streams(assignments)
    stats = cluster.run_dedup2(force_psiu=True)
    return PsilPsiuPoint(
        total_index_modeled_bytes=part_modeled_bytes * cluster.n_servers,
        psil_kfps=stats.psil_speed / 1e3,
        psiu_kfps=stats.psiu_speed / 1e3,
        fingerprints=stats.fingerprints_looked_up,
    )


# ------------------------------------------------------------- Figures 14/15
@dataclass
class WriteExperimentResult:
    """One (servers, part size) mode of the write experiments."""

    w_bits: int
    n_servers: int
    part_modeled_bytes: float
    logical_bytes: int = 0
    dedup1_wall: float = 0.0
    dedup2_wall: float = 0.0
    dedup2_log_bytes: int = 0
    version_streams: List[List[Tuple[bytes, int]]] = field(default_factory=list, repr=False)
    client_servers: List[int] = field(default_factory=list, repr=False)
    cluster: Optional[DebarCluster] = field(default=None, repr=False)

    @property
    def dedup1_throughput(self) -> float:
        return self.logical_bytes / self.dedup1_wall if self.dedup1_wall else 0.0

    @property
    def dedup2_throughput(self) -> float:
        return self.dedup2_log_bytes / self.dedup2_wall if self.dedup2_wall else 0.0

    @property
    def total_throughput(self) -> float:
        wall = self.dedup1_wall + self.dedup2_wall
        return self.logical_bytes / wall if wall else 0.0

    @property
    def supported_capacity_bytes(self) -> float:
        """Physical capacity the (modeled) index parts can address."""
        entries = self.part_modeled_bytes / 512 * 20 * self.n_servers
        return entries * 8 * KB


def run_write_experiment(
    w_bits: int,
    part_modeled_bytes: float,
    versions: int = 6,
    version_chunks: Optional[int] = None,
    clients_per_server: int = 4,
    section_chunks: int = 128,
    sigma: float = SIGMA,
    lpc_containers: Optional[int] = None,
    keep_cluster: bool = False,
    seed: int = 11,
) -> WriteExperimentResult:
    """Back up ``versions`` rounds of synthetic streams through a cluster.

    Follows the paper's Section 6.2 procedure: each client stream is a
    version chain with ~90 % duplicates (30 points cross-stream); dedup-2
    runs per the asynchronous policy with a forced flush at the end.

    ``lpc_containers`` defaults to just under one version's per-server
    container working set — the paper-scale relationship (a 128 MB LPC
    against 200 GB of per-server version data), under which each restored
    version re-fetches its containers instead of riding a cache that
    covers the whole scaled repository.
    """
    if lpc_containers is None:
        chunk_size = 8 * KB
        version_bytes = (version_chunks or int(VERSION_CHUNKS_PAPER * sigma)) * chunk_size
        per_version_containers = clients_per_server * version_bytes / (8 * MB)
        lpc_containers = max(4, int(per_version_containers * 0.9))
    cluster = scaled_cluster(w_bits, part_modeled_bytes, sigma, lpc_containers=lpc_containers)
    n_clients = cluster.n_servers * clients_per_server
    if version_chunks is None:
        version_chunks = max(128, int(VERSION_CHUNKS_PAPER * sigma))
    universe = SyntheticUniverse(
        SyntheticConfig(n_streams=n_clients, section_chunks=section_chunks, seed=seed)
    )
    jobs = [
        cluster.director.define_job(f"stream-{c}", f"client-{c}", [])
        for c in range(n_clients)
    ]
    result = WriteExperimentResult(
        w_bits=w_bits, n_servers=cluster.n_servers, part_modeled_bytes=part_modeled_bytes
    )
    for v in range(versions):
        assignments = []
        round_streams = []
        for c in range(n_clients):
            sections = universe.next_version(c, version_chunks)
            stream = list(universe.version_stream(sections))
            round_streams.append(stream)
            assignments.append((jobs[c], stream))
        d1 = cluster.backup_streams(assignments, timestamp=float(v))
        result.logical_bytes += d1.logical_bytes
        result.dedup1_wall += d1.wall_time
        result.version_streams.append(round_streams)
        if cluster.should_run_dedup2() or v == versions - 1:
            d2 = cluster.run_dedup2(force_psiu=(v == versions - 1))
            result.dedup2_wall += d2.wall_time
            result.dedup2_log_bytes += d2.log_bytes_processed
    result.client_servers = [
        cluster.director.scheduler.server_for(job) for job in jobs
    ]
    if keep_cluster:
        result.cluster = cluster
    return result


@dataclass
class ReadPoint:
    """One Figure 14(b) point: aggregate read throughput for a version."""

    version: int
    bytes_read: int
    wall: float
    lpc_hit_rate: float
    remote_container_fraction: float

    @property
    def throughput(self) -> float:
        return self.bytes_read / self.wall if self.wall else 0.0


def run_read_experiment(result: WriteExperimentResult) -> List[ReadPoint]:
    """Restore every version through the cluster, version by version.

    Clients read via their assigned servers (4 per server, lanes in
    parallel); the paper's Figure 14(b) decline comes from cross-stream
    chunks living in other nodes' containers, which the repository's
    placement + LPC statistics reproduce.
    """
    cluster = result.cluster
    if cluster is None:
        raise ValueError("run_write_experiment(keep_cluster=True) first")
    points = []
    for v, round_streams in enumerate(result.version_streams):
        lanes = [s.clock for s in cluster.servers]
        t0 = max(lane.now for lane in lanes)
        hits0 = sum(s.chunk_store.lpc.hits for s in cluster.servers)
        misses0 = sum(s.chunk_store.lpc.misses for s in cluster.servers)
        remote0 = sum(
            s.meter.by_category.get("restore.remote_container", 0.0)
            for s in cluster.servers
        )
        bytes_read = 0
        for c, stream in enumerate(round_streams):
            server = result.client_servers[c]
            for fp, size in stream:
                cluster.read_chunk(fp, via_server=server)
                bytes_read += size
        from repro.simdisk.clock import barrier

        barrier(lanes)
        wall = max(lane.now for lane in lanes) - t0
        hits = sum(s.chunk_store.lpc.hits for s in cluster.servers) - hits0
        misses = sum(s.chunk_store.lpc.misses for s in cluster.servers) - misses0
        remote_t = (
            sum(
                s.meter.by_category.get("restore.remote_container", 0.0)
                for s in cluster.servers
            )
            - remote0
        )
        points.append(
            ReadPoint(
                version=v + 1,
                bytes_read=bytes_read,
                wall=wall,
                lpc_hit_rate=hits / (hits + misses) if hits + misses else 0.0,
                remote_container_fraction=remote_t / wall if wall else 0.0,
            )
        )
    return points
