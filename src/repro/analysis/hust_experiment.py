"""The Section 6.1 experiment: DEBAR vs DDFS on the HUSt workload.

Drives the scaled 31-day, 8-client HUSt workload model through a
single-server DEBAR system and a DDFS system side by side, recording the
daily series behind Figures 6 (capacity growth), 7 (compression ratios),
8 (DEBAR throughput) and 9 (dedup-2 vs DDFS throughput).

Byte volumes are scaled down (the paper's month is 17 TB); ratios,
who-wins relationships and the shapes of the daily series are what this
reproduces.  Throughputs come from the calibrated device cost models, so
they are directly comparable with the paper's MB/s axes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.director.scheduler import Dedup2Policy
from repro.server import BackupServerConfig
from repro.system import DdfsSystem, DebarSystem
from repro.workloads import HustConfig, HustWorkload
from typing import Tuple


def paper_scaled_configs(scale: float = 1.0) -> Tuple[HustConfig, BackupServerConfig]:
    """The benchmark-default scaled-down Section 6.1 experiment setup.

    ``scale = 1.0`` runs ~48 k chunks/day (the paper's month is ~2.4 M
    chunks/day at 8 KB after its own 8-client aggregation; we keep the
    container:section:day ratios so the locality the LPC and SISL exploit
    is preserved).  Increase ``scale`` for tighter statistics, decrease it
    for faster smoke runs.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    hust = HustConfig(
        mean_daily_chunks=max(800, int(48_000 * scale)),
        days=31,
        seed=7,
        section_chunks=128,
    )
    debar = BackupServerConfig(
        index_n_bits=15,
        index_bucket_bytes=512,
        container_bytes=512 * 1024,
        filter_capacity=1 << 18,
        cache_capacity=1 << 21,
        siu_every=2,
        materialize=False,
    )
    return hust, debar


@dataclass
class DailyRecord:
    """One day of the comparison experiment."""

    day: int
    logical_bytes: int = 0
    dedup1_transferred_bytes: int = 0
    debar_physical_cum: int = 0
    ddfs_physical_cum: int = 0
    dedup1_time: float = 0.0
    dedup2_ran: bool = False
    dedup2_time: float = 0.0
    dedup2_log_bytes: int = 0
    dedup2_stored_bytes: int = 0
    ddfs_time: float = 0.0
    ddfs_new_bytes: int = 0

    # -- the Figure 7 ratios -------------------------------------------------
    @property
    def dedup1_ratio_daily(self) -> float:
        if not self.dedup1_transferred_bytes:
            return float("inf")
        return self.logical_bytes / self.dedup1_transferred_bytes

    @property
    def dedup2_ratio_daily(self) -> float:
        if not self.dedup2_stored_bytes:
            return float("inf")
        return self.dedup2_log_bytes / self.dedup2_stored_bytes

    @property
    def ddfs_ratio_daily(self) -> float:
        if not self.ddfs_new_bytes:
            return float("inf")
        return self.logical_bytes / self.ddfs_new_bytes

    # -- the Figure 8/9 throughputs ----------------------------------------------
    @property
    def dedup1_throughput(self) -> float:
        return self.logical_bytes / self.dedup1_time if self.dedup1_time else 0.0

    @property
    def dedup2_throughput(self) -> float:
        return self.dedup2_log_bytes / self.dedup2_time if self.dedup2_time else 0.0

    @property
    def ddfs_throughput(self) -> float:
        return self.logical_bytes / self.ddfs_time if self.ddfs_time else 0.0


@dataclass
class HustComparisonResult:
    """The full daily series plus cumulative figures."""

    days: List[DailyRecord] = field(default_factory=list)

    def _cum(self, attr: str, upto: Optional[int] = None) -> float:
        rows = self.days if upto is None else self.days[: upto + 1]
        return sum(getattr(r, attr) for r in rows)

    # -- Figure 6 -----------------------------------------------------------------
    def logical_cum(self, upto: Optional[int] = None) -> float:
        return self._cum("logical_bytes", upto)

    # -- Figure 7 cumulative ratios ---------------------------------------------------
    def dedup1_ratio_cum(self, upto: Optional[int] = None) -> float:
        transferred = self._cum("dedup1_transferred_bytes", upto)
        return self.logical_cum(upto) / transferred if transferred else float("inf")

    def dedup2_ratio_cum(self, upto: Optional[int] = None) -> float:
        stored = self._cum("dedup2_stored_bytes", upto)
        log = self._cum("dedup2_log_bytes", upto)
        return log / stored if stored else float("inf")

    def debar_ratio_cum(self, upto: Optional[int] = None) -> float:
        rows = self.days if upto is None else self.days[: upto + 1]
        physical = rows[-1].debar_physical_cum if rows else 0
        return self.logical_cum(upto) / physical if physical else float("inf")

    def ddfs_ratio_cum(self, upto: Optional[int] = None) -> float:
        rows = self.days if upto is None else self.days[: upto + 1]
        physical = rows[-1].ddfs_physical_cum if rows else 0
        return self.logical_cum(upto) / physical if physical else float("inf")

    # -- Figure 8/9 cumulative throughputs -----------------------------------------------
    def dedup1_throughput_cum(self) -> float:
        t = self._cum("dedup1_time")
        return self.logical_cum() / t if t else 0.0

    def dedup2_throughput_cum(self) -> float:
        t = self._cum("dedup2_time")
        log = self._cum("dedup2_log_bytes")
        return log / t if t else 0.0

    def debar_total_throughput_cum(self) -> float:
        t = self._cum("dedup1_time") + self._cum("dedup2_time")
        return self.logical_cum() / t if t else 0.0

    def ddfs_throughput_cum(self) -> float:
        t = self._cum("ddfs_time")
        return self.logical_cum() / t if t else 0.0

    @property
    def dedup2_run_days(self) -> List[int]:
        return [r.day for r in self.days if r.dedup2_ran]


def run_hust_comparison(
    hust_config: Optional[HustConfig] = None,
    debar_config: Optional[BackupServerConfig] = None,
    dedup2_threshold_chunks: Optional[int] = None,
    bloom_bits: int = 1 << 21,
    ddfs_lpc_containers: Optional[int] = None,
    run_ddfs: bool = True,
) -> HustComparisonResult:
    """Run the scaled month and return the daily series.

    ``dedup2_threshold_chunks`` controls the director's dedup-2 trigger so
    that, like the paper's experiment, dedup-2 runs on a subset of days
    rather than daily; the final day always flushes.
    """
    hust_config = hust_config if hust_config is not None else HustConfig()
    if debar_config is None:
        debar_config = BackupServerConfig(
            index_n_bits=13,
            index_bucket_bytes=512,
            container_bytes=64 * 1024,
            filter_capacity=1 << 17,
            cache_capacity=1 << 20,
            siu_every=2,
            materialize=False,
        )
    if dedup2_threshold_chunks is None:
        # ~2.2 days' worth of undetermined (filter-surviving) fingerprints,
        # which lands near the paper's 14 dedup-2 runs in 31 days.
        daily_undetermined = hust_config.mean_daily_chunks * (
            1 - hust_config.internal_fraction - hust_config.adjacent_fraction
        )
        dedup2_threshold_chunks = int(daily_undetermined * 2.2)
    if ddfs_lpc_containers is None:
        # Scale the DDFS LPC with the workload the way the paper's 128 MB
        # cache relates to its streams: room for ~1.5 days of containers,
        # so adjacent-version duplicates hit the cache instead of the index.
        chunks_per_container = max(
            1, debar_config.container_bytes // (hust_config.chunk_size + 28)
        )
        ddfs_lpc_containers = max(
            64, int(1.5 * hust_config.mean_daily_chunks / chunks_per_container)
        )

    workload = HustWorkload(hust_config)
    debar = DebarSystem(
        config=debar_config,
        policy=Dedup2Policy(undetermined_threshold=dedup2_threshold_chunks),
    )
    ddfs = (
        DdfsSystem(
            index_n_bits=debar_config.index_n_bits,
            index_bucket_bytes=debar_config.index_bucket_bytes,
            bloom_bits=bloom_bits,
            lpc_containers=ddfs_lpc_containers,
            write_buffer_capacity=1 << 15,
            container_bytes=debar_config.container_bytes,
        )
        if run_ddfs
        else None
    )
    jobs = {
        client: debar.define_job(f"hust-client-{client}", f"client-{client}")
        for client in range(hust_config.n_clients)
    }

    result = HustComparisonResult()
    for day in range(hust_config.days):
        record = DailyRecord(day=day)
        streams = workload.day_streams(day)

        d1_t0 = debar.elapsed
        for client, sections in streams:
            chunks = list(workload.stream_of(sections))
            _, d1 = debar.backup_stream(
                jobs[client], chunks, timestamp=float(day), auto_dedup2=False
            )
            record.logical_bytes += d1.logical_bytes
            record.dedup1_transferred_bytes += d1.transferred_bytes
            if ddfs is not None:
                ddfs_stats = ddfs.backup_stream(chunks)
                record.ddfs_time += ddfs_stats.elapsed
                record.ddfs_new_bytes += ddfs_stats.new_bytes
        record.dedup1_time = debar.elapsed - d1_t0

        should = debar.director.should_run_dedup2(
            [debar.server.undetermined_count], [debar.server.chunk_log_bytes]
        )
        if should or day == hust_config.days - 1:
            d2 = debar.run_dedup2(force_siu=(day == hust_config.days - 1))
            record.dedup2_ran = True
            record.dedup2_time = d2.elapsed
            record.dedup2_log_bytes = d2.log_bytes_processed
            record.dedup2_stored_bytes = d2.new_bytes_stored

        record.debar_physical_cum = debar.physical_bytes_stored
        if ddfs is not None:
            record.ddfs_physical_cum = ddfs.physical_bytes_stored
        result.days.append(record)
    return result
