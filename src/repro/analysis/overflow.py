"""Disk-index overflow analysis: Table 1's bound and Table 2's simulator.

**Table 1** evaluates the paper's formula (1): with ``2^n`` buckets of
capacity ``b`` and ``eta * b * 2^n`` uniformly inserted fingerprints, the
probability that *some* three adjacent buckets collectively hold ``>= 3b``
entries is bounded by

    Pr(C) < (2^n - 2) * (1 - P[Poisson(3*eta*b) <= 3b - 1])

and ``Pr(D) < Pr(C)`` where D is the event that an insert actually finds a
bucket and both neighbours full (the capacity-scaling trigger).

**Table 2** measures, by simulation with a counter per bucket, the index
utilization reached when D first occurs, plus the fraction of full buckets
(rho) and the counts of exactly-3-adjacent (n3) and >=4-adjacent (n4) full
bucket runs at exit.  Two simulators are provided: an exact per-fingerprint
one (ground truth, small sizes) and a vectorised batched one (large sizes;
batches bound the utilization error by the batch size).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np
from scipy import stats as sps

from repro.core.disk_index import DISK_BLOCK_SIZE, ENTRIES_PER_BLOCK
from repro.util import GB, KB

#: Table 1 / Table 2 bucket sizes (bytes) for the paper's 512 GB index.
TABLE1_BUCKETS = [512, 1 * KB, 2 * KB, 4 * KB, 8 * KB, 16 * KB, 32 * KB, 64 * KB]

#: The paper's measured utilizations at the scaling trigger (Table 2 eta avg).
TABLE2_ETA_AVG = {
    512: 0.4145,
    1 * KB: 0.5679,
    2 * KB: 0.6804,
    4 * KB: 0.7758,
    8 * KB: 0.8423,
    16 * KB: 0.8825,
    32 * KB: 0.9214,
    64 * KB: 0.9443,
}


def bucket_parameters(bucket_bytes: int, index_bytes: int = 512 * GB) -> Tuple[int, int]:
    """(b, n) for a bucket size within a given total index size.

    ``b`` is the entry capacity (20 entries per 512-byte block), ``n`` the
    bucket-count exponent — e.g. 8 KB buckets in a 512 GB index give
    ``b = 320, n = 26``.
    """
    if bucket_bytes % DISK_BLOCK_SIZE != 0 or bucket_bytes <= 0:
        raise ValueError("bucket size must be a positive multiple of 512")
    b = (bucket_bytes // DISK_BLOCK_SIZE) * ENTRIES_PER_BLOCK
    n_buckets = index_bytes // bucket_bytes
    if n_buckets < 4:
        raise ValueError("index too small for this bucket size")
    n = int(n_buckets).bit_length() - 1
    return b, n


def pr_c_upper_bound(b: int, eta: float, n_bits: int) -> float:
    """Formula (1): the Table 1 upper bound on Pr(C) (and hence Pr(D)).

    The fill of three adjacent buckets under uniform insertion of
    ``eta * b * 2^n`` fingerprints is ~Poisson(3*eta*b); the bound is a
    union over the ``2^n - 2`` bucket triples.
    """
    if b < 1 or n_bits < 1:
        raise ValueError("b and n_bits must be positive")
    if not 0 < eta < 1:
        raise ValueError("eta must be in (0, 1)")
    tail = sps.poisson.sf(3 * b - 1, 3 * eta * b)  # P[X >= 3b]
    return float(((1 << n_bits) - 2) * tail)


def utilization_for_target_bound(
    b: int, n_bits: int, target: float = 0.02, tol: float = 1e-4
) -> float:
    """Largest ``eta`` whose Pr(C) bound stays below ``target``.

    This reproduces Table 1's eta column: the utilization at which the
    scaling-trigger probability bound reaches ~2 %.
    """
    if not 0 < target < 1:
        raise ValueError("target must be in (0, 1)")
    lo, hi = 1e-6, 1.0 - 1e-6
    while hi - lo > tol:
        mid = (lo + hi) / 2
        if pr_c_upper_bound(b, mid, n_bits) < target:
            lo = mid
        else:
            hi = mid
    return lo


@dataclass
class UtilizationResult:
    """Outcome of one Table 2 simulation run."""

    eta: float
    rho: float
    n3: int
    n4: int
    inserted: int
    capacity: int


class UtilizationSimulator:
    """The Table 2 experiment: insert until the scaling trigger fires.

    A counter array simulates the ``2^n``-bucket index; a fingerprint is a
    uniform bucket draw (the paper generates them with SHA-1 over a counter,
    which is statistically the same thing — validated by the exact/SHA-1
    cross-check in the tests).  On overflow a random adjacent counter takes
    the entry; the run stops when an arrival finds its bucket and both
    neighbours full (event D).
    """

    def __init__(self, n_bits: int, bucket_capacity: int, seed: int = 0) -> None:
        if n_bits < 2:
            raise ValueError("need at least 4 buckets")
        if bucket_capacity < 1:
            raise ValueError("bucket capacity must be positive")
        self.n_bits = n_bits
        self.n_buckets = 1 << n_bits
        self.b = bucket_capacity
        self.seed = seed

    # -- exact reference ------------------------------------------------------------
    def run_exact(self) -> UtilizationResult:
        """Per-fingerprint simulation; exact but O(capacity) Python-slow."""
        rng = np.random.default_rng(self.seed)
        n, b = self.n_buckets, self.b
        counts = np.zeros(n, dtype=np.int64)
        draws = rng.integers(0, n, size=n * b + n)  # more than enough
        inserted = 0
        for k in draws:
            if counts[k] < b:
                counts[k] += 1
            else:
                left, right = (k - 1) % n, (k + 1) % n
                first, second = (left, right) if rng.random() < 0.5 else (right, left)
                if counts[first] < b:
                    counts[first] += 1
                elif counts[second] < b:
                    counts[second] += 1
                else:
                    return self._result(counts, inserted)
            inserted += 1
        raise RuntimeError("draw pool exhausted before the trigger fired")

    # -- vectorised batched version -----------------------------------------------------
    def run_fast(self, batch_fraction: float = 0.002) -> UtilizationResult:
        """Batched simulation: inserts arrive in batches of
        ``batch_fraction * capacity``; overflow is resolved between batches.
        Utilization error is bounded by one batch (~0.2 % by default).
        """
        if not 0 < batch_fraction <= 0.25:
            raise ValueError("batch_fraction must be in (0, 0.25]")
        rng = np.random.default_rng(self.seed)
        n, b = self.n_buckets, self.b
        capacity = n * b
        batch = max(64, int(capacity * batch_fraction))
        counts = np.zeros(n, dtype=np.int64)
        inserted = 0
        while True:
            draws = rng.integers(0, n, size=batch)
            counts += np.bincount(draws, minlength=n)
            inserted += batch
            if not self._resolve_overflow(counts, b, rng):
                # Trigger fired: subtract the unplaceable leftovers.
                leftover = int(np.clip(counts - b, 0, None).sum())
                counts = np.minimum(counts, b)
                return self._result(counts, inserted - leftover)
            if inserted > capacity:
                raise RuntimeError("index absorbed more than its capacity — bug")

    @staticmethod
    def _resolve_overflow(counts: np.ndarray, cap: int, rng: np.random.Generator) -> bool:
        """Push excess entries to random adjacent buckets until none remain.

        Returns False when an excess entry sits between two full buckets —
        event D, the capacity-scaling trigger.
        """
        n = counts.shape[0]
        while True:
            over_idx = np.flatnonzero(counts > cap)
            if over_idx.size == 0:
                return True
            # An overflowing bucket whose both neighbours are full cannot
            # place its excess: the trigger fires.
            lfull = counts[(over_idx - 1) % n] >= cap
            rfull = counts[(over_idx + 1) % n] >= cap
            if np.any(lfull & rfull):
                return False
            excess = counts[over_idx] - cap
            counts[over_idx] = cap
            left = rng.binomial(excess, 0.5)
            right = excess - left
            np.add.at(counts, (over_idx - 1) % n, left)
            np.add.at(counts, (over_idx + 1) % n, right)

    def _result(self, counts: np.ndarray, inserted: int) -> UtilizationResult:
        b = self.b
        capacity = self.n_buckets * b
        full = counts >= b
        n3, n4 = _adjacent_full_runs(full)
        return UtilizationResult(
            eta=inserted / capacity,
            rho=float(full.mean()),
            n3=n3,
            n4=n4,
            inserted=inserted,
            capacity=capacity,
        )


def _adjacent_full_runs(full: np.ndarray) -> Tuple[int, int]:
    """Count runs of exactly-3 and >=4 adjacent full buckets (circular)."""
    n = full.shape[0]
    if full.all():
        return 0, 1
    # Rotate so position 0 is not full, making runs non-wrapping.
    first_empty = int(np.flatnonzero(~full)[0])
    rolled = np.roll(full, -first_empty)
    padded = np.concatenate(([False], rolled, [False])).astype(np.int8)
    diffs = np.diff(padded)
    starts = np.flatnonzero(diffs == 1)
    ends = np.flatnonzero(diffs == -1)
    lengths = ends - starts
    n3 = int((lengths == 3).sum())
    n4 = int((lengths >= 4).sum())
    return n3, n4
