"""Analytic models and simulators for the paper's tables and figures."""

from repro.analysis.overflow import (
    pr_c_upper_bound,
    utilization_for_target_bound,
    UtilizationSimulator,
    UtilizationResult,
    TABLE1_BUCKETS,
)
from repro.analysis.capacity import (
    WorkloadRates,
    DebarCapacityModel,
    DdfsCapacityModel,
    sil_time,
    siu_time,
    sil_efficiency,
    siu_efficiency,
    random_lookup_speed,
    random_update_speed,
    index_supported_capacity,
)

__all__ = [
    "pr_c_upper_bound",
    "utilization_for_target_bound",
    "UtilizationSimulator",
    "UtilizationResult",
    "TABLE1_BUCKETS",
    "WorkloadRates",
    "DebarCapacityModel",
    "DdfsCapacityModel",
    "sil_time",
    "siu_time",
    "sil_efficiency",
    "siu_efficiency",
    "random_lookup_speed",
    "random_update_speed",
    "index_supported_capacity",
]
