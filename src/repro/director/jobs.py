"""Job objects and job chains (Sections 3.1 and 5.1).

A backup job object carries at least a *client* (which backup client hosts
the data), a *dataset* (the files and directories to protect) and a
*schedule* ("daily at 1.05am").  Multiple runs of the same job object form a
chronologically ordered *job chain* ``Job_x(t0), Job_x(t1), ...`` — and the
observation that adjacent chain members share most of their data is what
the preliminary filter exploits: run ``t_{n-1}``'s fingerprints filter run
``t_n``.
"""

from __future__ import annotations

import itertools
import re
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

_job_ids = itertools.count(1)
_run_ids = itertools.count(1)

_SCHEDULE_RE = re.compile(r"^(daily|weekly|hourly) at (\d{1,2})[.:](\d{2})(am|pm)?$")


@dataclass(frozen=True)
class Schedule:
    """A recurrence rule like the paper's example ``daily at 1.05am``."""

    period: str  # "hourly" | "daily" | "weekly"
    hour: int
    minute: int

    _PERIOD_SECONDS = {"hourly": 3600, "daily": 86400, "weekly": 7 * 86400}

    def __post_init__(self) -> None:
        if self.period not in self._PERIOD_SECONDS:
            raise ValueError(f"unknown period {self.period!r}")
        if not 0 <= self.hour < 24 or not 0 <= self.minute < 60:
            raise ValueError("invalid time of day")

    @classmethod
    def parse(cls, text: str) -> "Schedule":
        """Parse ``"daily at 1.05am"``-style schedule strings."""
        m = _SCHEDULE_RE.match(text.strip().lower())
        if not m:
            raise ValueError(f"cannot parse schedule {text!r}")
        period, hour, minute, ampm = m.groups()
        hour = int(hour)
        if ampm == "pm" and hour != 12:
            hour += 12
        elif ampm == "am" and hour == 12:
            hour = 0
        return cls(period, hour, int(minute))

    @property
    def period_seconds(self) -> int:
        return self._PERIOD_SECONDS[self.period]

    def next_run_time(self, after: float) -> float:
        """First scheduled time strictly after ``after`` (seconds since an
        epoch whose t=0 is midnight)."""
        offset = self.hour * 3600 + self.minute * 60
        period = self.period_seconds
        k = int((after - offset) // period) + 1
        t = k * period + offset
        if t <= after:  # guard float edge cases
            t += period
        return t


@dataclass
class JobObject:
    """What/where/when for one recurring backup task."""

    name: str
    client: str
    dataset: Sequence[str]
    schedule: Schedule = field(default_factory=lambda: Schedule("daily", 1, 5))
    job_id: int = field(default_factory=lambda: next(_job_ids))

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("job needs a name")
        if not self.client:
            raise ValueError("job needs a client")


@dataclass
class JobRun:
    """One executed instance ``Job_x(t_n)`` of a job object."""

    job: JobObject
    timestamp: float
    run_id: int = field(default_factory=lambda: next(_run_ids))
    server: Optional[int] = None
    logical_bytes: int = 0
    transferred_bytes: int = 0
    chunk_count: int = 0


class JobChain:
    """The chronologically ordered runs of one job object."""

    def __init__(self, job: JobObject) -> None:
        self.job = job
        self._runs: List[JobRun] = []

    def record(self, run: JobRun) -> None:
        if run.job.job_id != self.job.job_id:
            raise ValueError("run belongs to a different job object")
        if self._runs and run.timestamp < self._runs[-1].timestamp:
            raise ValueError("job chain must be chronologically ordered")
        self._runs.append(run)

    @property
    def runs(self) -> Tuple[JobRun, ...]:
        return tuple(self._runs)

    def latest(self) -> Optional[JobRun]:
        """The most recent run — the filtering-fingerprint source for the
        next run of this job (Section 5.1)."""
        return self._runs[-1] if self._runs else None

    def __len__(self) -> int:
        return len(self._runs)
