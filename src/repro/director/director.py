"""The director: the dedicated control centre of a DEBAR system (Section 3.1).

Supervises backup/restore/verify through job objects, maintains job chains
and metadata, assigns jobs to backup servers, and decides when the whole
cluster runs dedup-2.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.fingerprint import Fingerprint
from repro.director.jobs import JobChain, JobObject, JobRun, Schedule
from repro.director.metadata import FileIndexEntry, MetadataManager, MetadataStore
from repro.director.scheduler import Dedup2Policy, JobScheduler


class Director:
    """Global management: jobs, chains, metadata, scheduling, dedup-2,
    and archive retention."""

    def __init__(
        self,
        n_servers: int = 1,
        policy: Optional[Dedup2Policy] = None,
        metadata_store: Optional[MetadataStore] = None,
        retention=None,
    ) -> None:
        self.scheduler = JobScheduler(n_servers)
        self.policy = policy if policy is not None else Dedup2Policy()
        self.metadata = MetadataManager(store=metadata_store)
        #: Archive retention policy (repro.archive.retention); None means
        #: the archive keeps every restore point forever.
        self.retention = retention
        self._jobs: Dict[int, JobObject] = {}
        self._chains: Dict[int, JobChain] = {}
        self.dedup2_runs = 0

    # -- job lifecycle ----------------------------------------------------------
    def define_job(
        self,
        name: str,
        client: str,
        dataset: Sequence[str],
        schedule: str = "daily at 1.05am",
    ) -> JobObject:
        """Create and register a job object (the User Interface path)."""
        job = JobObject(name, client, list(dataset), Schedule.parse(schedule))
        self._jobs[job.job_id] = job
        self._chains[job.job_id] = JobChain(job)
        return job

    def job_by_name(self, name: str) -> JobObject:
        for job in self._jobs.values():
            if job.name == name:
                return job
        raise KeyError(f"no job named {name!r}")

    def chain(self, job: JobObject) -> JobChain:
        return self._chains[job.job_id]

    def find_run(self, run_id: int) -> Optional[JobRun]:
        """Locate a completed run record by ID across all chains."""
        for chain in self._chains.values():
            for run in chain.runs:
                if run.run_id == run_id:
                    return run
        return None

    def assign_backup(self, job: JobObject, expected_bytes: int = 0) -> int:
        """Schedule a run of ``job``: returns the backup server to use."""
        if job.job_id not in self._jobs:
            raise KeyError(f"job {job.name!r} is not registered")
        return self.scheduler.assign(job, expected_bytes)

    def begin_run(self, job: JobObject, timestamp: float, server: int) -> JobRun:
        """Open a run record at backup start."""
        return JobRun(job, timestamp, server=server)

    def complete_run(self, run: JobRun, file_entries: Sequence[FileIndexEntry]) -> None:
        """Close a run: record it on the chain and persist its metadata."""
        self._chains[run.job.job_id].record(run)
        self.metadata.record_run_files(run.run_id, file_entries)

    # -- preliminary-filter support -------------------------------------------------
    def filtering_fingerprints(self, job: JobObject) -> Optional[List[Fingerprint]]:
        """The previous run's fingerprints, used to seed the preliminary
        filter for the next run of this job (Section 5.1); ``None`` on the
        first run of a chain."""
        previous = self._chains[job.job_id].latest()
        if previous is None:
            return None
        return self.metadata.fingerprints_for_run(previous.run_id)

    # -- dedup-2 control ---------------------------------------------------------------
    def should_run_dedup2(
        self,
        undetermined_counts: Sequence[int],
        log_bytes: Sequence[int],
    ) -> bool:
        """Ask the policy whether to initiate a cluster-wide dedup-2 now."""
        return self.policy.should_run(undetermined_counts, log_bytes)

    def record_dedup2(self) -> None:
        self.dedup2_runs += 1

    # -- archive retention -------------------------------------------------------------
    def runs_to_expire(self, points: Sequence) -> List[int]:
        """Which restore points of one chain the retention policy expires.

        ``points`` is ``(run_id, wall timestamp)`` pairs; returns run ids,
        oldest first, empty with no policy (keep forever).
        """
        if self.retention is None:
            return []
        return self.retention.expired(list(points))

    def expire_archive(self, store, origin: str, job: str) -> List[int]:
        """Evaluate retention for one archived chain and apply it: expired
        runs merge forward (``repro.archive.store``) before dropping, so
        every surviving point stays restorable.  Returns the expired ids.
        """
        if self.retention is None:
            return []
        return store.apply_retention(origin, job, self.retention)
