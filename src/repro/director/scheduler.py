"""Job scheduling, load balancing, and the dedup-2 trigger policy.

The director assigns backup jobs to backup servers to balance load
(Section 3.1) and "when necessary ... initiates a dedup-2 job in which all
the backup servers cooperate".  The paper leaves the trigger informal —
dedup-2 ran on 14 of the 31 experiment days — so the policy implemented
here is the natural one its Section 5.2 analysis implies: run dedup-2 when
the accumulated undetermined fingerprints approach one index-cache-full
(SIL efficiency is maximised when each sweep serves a full cache), or when
the chunk log approaches its space budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.director.jobs import JobObject


class JobScheduler:
    """Least-loaded assignment of backup jobs to backup servers."""

    def __init__(self, n_servers: int) -> None:
        if n_servers < 1:
            raise ValueError("need at least one backup server")
        self.n_servers = n_servers
        self._load: List[int] = [0] * n_servers
        self._job_counts: List[int] = [0] * n_servers
        self._assignment: Dict[int, int] = {}

    def assign(self, job: JobObject, expected_bytes: int = 0) -> int:
        """Pick (and remember) the server for a job; sticky across runs so
        the job's chunk-log locality stays on one server.

        New jobs go to the least-loaded server by assigned bytes, breaking
        ties by job count (so a fresh cluster spreads jobs round-robin).
        """
        if job.job_id in self._assignment:
            server = self._assignment[job.job_id]
        else:
            server = min(
                range(self.n_servers),
                key=lambda s: (self._load[s], self._job_counts[s], s),
            )
            self._assignment[job.job_id] = server
            self._job_counts[server] += 1
        self._load[server] += max(expected_bytes, 0)
        return server

    def server_for(self, job: JobObject) -> int:
        try:
            return self._assignment[job.job_id]
        except KeyError:
            raise KeyError(f"job {job.name!r} has not been assigned")

    def loads(self) -> List[int]:
        """Cumulative assigned bytes per server."""
        return list(self._load)

    @property
    def imbalance(self) -> float:
        """max/mean load ratio (1.0 is perfectly balanced)."""
        total = sum(self._load)
        if total == 0:
            return 1.0
        mean = total / self.n_servers
        return max(self._load) / mean


@dataclass
class Dedup2Policy:
    """When should the director initiate dedup-2?

    Parameters
    ----------
    undetermined_threshold:
        Trigger when any server's undetermined fingerprints reach this
        count (defaults should be set to the index-cache capacity — one
        full SIL's worth).
    log_bytes_threshold:
        Trigger when any server's chunk log reaches this size.
    """

    undetermined_threshold: int = 1 << 20
    log_bytes_threshold: int = 1 << 40

    def should_run(
        self,
        undetermined_counts: Sequence[int],
        log_bytes: Sequence[int],
    ) -> bool:
        """Evaluate the trigger over per-server backlog figures."""
        if any(c >= self.undetermined_threshold for c in undetermined_counts):
            return True
        if any(b >= self.log_bytes_threshold for b in log_bytes):
            return True
        return False
