"""A cluster of directors (the paper's Section 6.3 future work).

"Using a cluster of directors to build an ultra large-scale DEBAR system
that stores exabytes of logical data with hundreds of backup servers is a
potential challenge for our future work."

The design implemented here: jobs are partitioned across directors by a
stable hash of the job name, so each director owns a disjoint slice of job
chains and metadata; backup servers are shared.  The ensemble exposes the
same interface a :class:`~repro.director.director.Director` presents to
:class:`~repro.system.cluster.DebarCluster`, so a cluster can be built over
one director or many without code changes.  Dedup-2 remains a cluster-wide
rendezvous: any director's trigger fires it, and completions are broadcast
to all (they each track the global cycle).
"""

from __future__ import annotations

import hashlib
from typing import List, Optional, Sequence

from repro.core.fingerprint import Fingerprint
from repro.director.director import Director
from repro.director.jobs import JobChain, JobObject, JobRun
from repro.director.metadata import FileIndexEntry
from repro.director.scheduler import Dedup2Policy


class _EnsembleMetadataView:
    """Read-side facade over every member director's metadata manager."""

    def __init__(self, ensemble: "DirectorEnsemble") -> None:
        self._ensemble = ensemble

    def files_for_run(self, run_id: int) -> List[FileIndexEntry]:
        for director in self._ensemble.directors:
            if run_id in director.metadata:
                return director.metadata.files_for_run(run_id)
        raise KeyError(f"no metadata recorded for run {run_id}")

    def fingerprints_for_run(self, run_id: int) -> List[Fingerprint]:
        for director in self._ensemble.directors:
            if run_id in director.metadata:
                return director.metadata.fingerprints_for_run(run_id)
        raise KeyError(f"no metadata recorded for run {run_id}")

    def iter_run_fingerprints(self):
        """(run ID, fingerprint sequence) across every member director."""
        for director in self._ensemble.directors:
            yield from director.metadata.iter_run_fingerprints()

    def __contains__(self, run_id: int) -> bool:
        return any(run_id in d.metadata for d in self._ensemble.directors)


class DirectorEnsemble:
    """``n_directors`` directors sharing one pool of backup servers."""

    def __init__(
        self,
        n_directors: int,
        n_servers: int = 1,
        policy: Optional[Dedup2Policy] = None,
    ) -> None:
        if n_directors < 1:
            raise ValueError("need at least one director")
        self.policy = policy if policy is not None else Dedup2Policy()
        self.directors = [
            Director(n_servers=n_servers, policy=self.policy)
            for _ in range(n_directors)
        ]
        self.metadata = _EnsembleMetadataView(self)
        self.dedup2_runs = 0

    # -- routing ------------------------------------------------------------------
    def director_for(self, job_name: str) -> Director:
        """The member that owns a job, by stable hash of its name."""
        digest = hashlib.sha1(job_name.encode()).digest()
        return self.directors[int.from_bytes(digest[:4], "big") % len(self.directors)]

    def _owner_of(self, job: JobObject) -> Director:
        return self.director_for(job.name)

    # -- the Director interface used by DebarCluster -----------------------------------
    def define_job(
        self,
        name: str,
        client: str,
        dataset: Sequence[str],
        schedule: str = "daily at 1.05am",
    ) -> JobObject:
        return self.director_for(name).define_job(name, client, dataset, schedule)

    def job_by_name(self, name: str) -> JobObject:
        return self.director_for(name).job_by_name(name)

    def chain(self, job: JobObject) -> JobChain:
        return self._owner_of(job).chain(job)

    def assign_backup(self, job: JobObject, expected_bytes: int = 0) -> int:
        return self._owner_of(job).assign_backup(job, expected_bytes)

    def begin_run(self, job: JobObject, timestamp: float, server: int) -> JobRun:
        return self._owner_of(job).begin_run(job, timestamp, server)

    def complete_run(self, run: JobRun, file_entries: Sequence[FileIndexEntry]) -> None:
        self._owner_of(run.job).complete_run(run, file_entries)

    def filtering_fingerprints(self, job: JobObject) -> Optional[List[Fingerprint]]:
        return self._owner_of(job).filtering_fingerprints(job)

    def find_run(self, run_id: int) -> Optional[JobRun]:
        for director in self.directors:
            run = director.find_run(run_id)
            if run is not None:
                return run
        return None

    def should_run_dedup2(
        self, undetermined_counts: Sequence[int], log_bytes: Sequence[int]
    ) -> bool:
        return self.policy.should_run(undetermined_counts, log_bytes)

    def record_dedup2(self) -> None:
        self.dedup2_runs += 1
        for director in self.directors:
            director.record_dedup2()

    # -- introspection ------------------------------------------------------------------
    @property
    def scheduler(self):
        """Schedulers are per-director; expose the first for compatibility
        with single-director call sites (prefer :meth:`server_for_job`)."""
        return self.directors[0].scheduler

    def server_for_job(self, job: JobObject) -> int:
        return self._owner_of(job).scheduler.server_for(job)

    def job_counts(self) -> List[int]:
        """Jobs owned per director (balance diagnostic)."""
        return [len(d._jobs) for d in self.directors]
