"""The DEBAR director: job objects, scheduling, metadata (Section 3.1)."""

from repro.director.jobs import JobObject, JobRun, JobChain, Schedule
from repro.director.metadata import FileMetadata, FileIndexEntry, MetadataManager, MetadataStore
from repro.director.scheduler import JobScheduler, Dedup2Policy
from repro.director.director import Director
from repro.director.ensemble import DirectorEnsemble

__all__ = [
    "JobObject",
    "JobRun",
    "JobChain",
    "Schedule",
    "FileMetadata",
    "FileIndexEntry",
    "MetadataManager",
    "MetadataStore",
    "JobScheduler",
    "Dedup2Policy",
    "Director",
    "DirectorEnsemble",
]
