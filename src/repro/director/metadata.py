"""The director's metadata manager and metadata store (Sections 3.1, 6.3).

The metadata manager keeps, per job run, the file metadata and *file
indices* — the sequences of fingerprints referencing each file's chunks —
that make backups restorable.  For a PB-scale system this metadata reaches
terabytes, so the paper adds a dedicated metadata storage subsystem able to
serve >250 jobs concurrently at >100 MB/s aggregate; :class:`MetadataStore`
models that subsystem with the same volume/served-time accounting used
everywhere else.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.fingerprint import FINGERPRINT_SIZE, Fingerprint
from repro.simdisk import Meter, SimClock
from repro.simdisk.disk import DiskModel
from repro.util import MB


@dataclass(frozen=True)
class FileMetadata:
    """Per-file attributes backed up ahead of content (Section 3.2)."""

    path: str
    size: int
    mode: int = 0o644
    mtime: float = 0.0


@dataclass
class FileIndexEntry:
    """One file's restore recipe: metadata plus its fingerprint sequence."""

    metadata: FileMetadata
    fingerprints: List[Fingerprint] = field(default_factory=list)

    @property
    def index_bytes(self) -> int:
        """On-disk footprint of the file index itself."""
        return len(self.fingerprints) * FINGERPRINT_SIZE


class MetadataManager:
    """Job metadata: run records and file indices, keyed by run ID."""

    def __init__(self, store: Optional["MetadataStore"] = None) -> None:
        self._files: Dict[int, List[FileIndexEntry]] = {}
        self._run_fingerprints: Dict[int, List[Fingerprint]] = {}
        self.store = store

    def record_run_files(self, run_id: int, entries: Sequence[FileIndexEntry]) -> None:
        """Persist a run's file metadata and indices."""
        if run_id in self._files:
            raise ValueError(f"run {run_id} already recorded")
        self._files[run_id] = list(entries)
        flat: List[Fingerprint] = []
        for entry in entries:
            flat.extend(entry.fingerprints)
        self._run_fingerprints[run_id] = flat
        if self.store is not None:
            self.store.write(sum(e.index_bytes for e in entries) or FINGERPRINT_SIZE)

    def files_for_run(self, run_id: int) -> List[FileIndexEntry]:
        """All file index entries of one run (restore entry point)."""
        try:
            entries = self._files[run_id]
        except KeyError:
            raise KeyError(f"no metadata recorded for run {run_id}")
        if self.store is not None:
            self.store.read(sum(e.index_bytes for e in entries) or FINGERPRINT_SIZE)
        return entries

    def fingerprints_for_run(self, run_id: int) -> List[Fingerprint]:
        """The run's full fingerprint sequence — the filtering fingerprints
        the preliminary filter preloads for the *next* run of the job."""
        try:
            return self._run_fingerprints[run_id]
        except KeyError:
            raise KeyError(f"no metadata recorded for run {run_id}")

    def file_index(self, run_id: int, path: str) -> FileIndexEntry:
        """One file's index within a run."""
        for entry in self.files_for_run(run_id):
            if entry.metadata.path == path:
                return entry
        raise KeyError(f"{path} not in run {run_id}")

    def iter_run_fingerprints(self):
        """(run ID, fingerprint sequence) for every recorded run.

        The auditor's restorability sweep: every fingerprint a recorded
        backup references must still resolve to a stored chunk.  Iterates
        the in-memory records directly, charging no store traffic.
        """
        return iter(self._run_fingerprints.items())

    def __contains__(self, run_id: int) -> bool:
        return run_id in self._files


class MetadataStore:
    """The director's metadata storage subsystem (Section 6.3).

    An append-friendly store modeled at the paper's measured aggregate rate
    (>100 MB/s over >250 concurrent jobs); reads and writes charge a shared
    clock so director metadata traffic shows up in end-to-end timings.
    """

    def __init__(
        self,
        clock: Optional[SimClock] = None,
        disk: Optional[DiskModel] = None,
    ) -> None:
        self.clock = clock if clock is not None else SimClock()
        self.meter = Meter(self.clock)
        self.disk = disk if disk is not None else DiskModel(
            seq_read_rate=100 * MB, seq_write_rate=100 * MB, random_io_time=0.5e-3
        )
        self.bytes_written = 0
        self.bytes_read = 0

    def write(self, nbytes: int) -> None:
        # Log-structured metadata store: writes append (no per-op seek),
        # which is how one spindle sustains hundreds of concurrent jobs.
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        self.bytes_written += nbytes
        self.meter.charge("metadata.write", self.disk.append_write_time(nbytes))

    def read(self, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        self.bytes_read += nbytes
        self.meter.charge("metadata.read", self.disk.append_read_time(nbytes))

    @property
    def aggregate_throughput(self) -> float:
        """Bytes served per simulated second so far."""
        total_time = self.meter.total("metadata")
        total_bytes = self.bytes_read + self.bytes_written
        return total_bytes / total_time if total_time else float("inf")
