"""``python -m repro`` — the DEBAR vault CLI."""

from repro.cli import main

raise SystemExit(main())
