"""Content-defined chunking (CDC) with anchors, per LBFS (Section 3.2).

A position is an *anchor* when the low-order ``k`` bits of the Rabin
fingerprint of the 48-byte window ending there equal a predetermined
constant; anchors become chunk boundaries, so insertions and deletions only
perturb the chunks around the edit instead of re-aligning the whole file
(the fixed-size blocking pathology).

DEBAR's parameters: expected chunk size 8 KB (``k = 13``), with a 2 KB lower
bound and 64 KB upper bound to rule out the pathological cases LBFS
describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

import numpy as np

from repro.chunking.rabin import RABIN_WINDOW_SIZE, RabinFingerprint, window_fingerprints
from repro.core.fingerprint import Fingerprint, fingerprint

#: Anchor constant compared against the low-order k bits of the window
#: fingerprint.  Any fixed value works; zero is avoided because long runs of
#: zero bytes have zero fingerprints, which would anchor at every position.
ANCHOR_MAGIC = 0x0078


@dataclass(frozen=True)
class Chunk:
    """One content-defined chunk: payload plus its SHA-1 fingerprint."""

    data: bytes
    fingerprint: Fingerprint
    offset: int

    @property
    def size(self) -> int:
        return len(self.data)


class ContentDefinedChunker:
    """Divide byte streams into variable-sized, content-defined chunks.

    Parameters
    ----------
    avg_bits:
        ``k``; expected chunk size is ``2^k`` bytes (paper: 13 -> 8 KB).
    min_size, max_size:
        Hard bounds on chunk size (paper: 2 KB and 64 KB).
    """

    def __init__(
        self,
        avg_bits: int = 13,
        min_size: int = 2 * 1024,
        max_size: int = 64 * 1024,
    ) -> None:
        if avg_bits < 1 or avg_bits > 48:
            raise ValueError("avg_bits out of range")
        if min_size < RABIN_WINDOW_SIZE:
            raise ValueError("min_size must cover at least one window")
        if not min_size <= (1 << avg_bits) <= max_size:
            raise ValueError("expected size must lie within [min_size, max_size]")
        self.avg_bits = avg_bits
        self.min_size = min_size
        self.max_size = max_size
        self._mask = (1 << avg_bits) - 1
        self._magic = ANCHOR_MAGIC & self._mask

    @property
    def expected_size(self) -> int:
        """The expected chunk size ``2^k``."""
        return 1 << self.avg_bits

    # -- boundary computation ------------------------------------------------
    def cut_points(self, data: bytes) -> List[int]:
        """End offsets of every chunk of ``data`` (last one is ``len(data)``).

        Uses the vectorised Rabin pass to find all candidate anchors, then
        applies the min/max discipline: a chunk ends at the first anchor at
        least ``min_size`` in, or at ``max_size`` if no anchor arrives.
        """
        n = len(data)
        if n == 0:
            return []
        fps = window_fingerprints(data)
        # Window ending at byte index e-1 (1-based cut offset e) starts at
        # e - RABIN_WINDOW_SIZE; fps[j] covers data[j : j+48], so the cut
        # offset for anchor fps[j] is j + 48.
        anchor_mask = (fps & np.uint64(self._mask)) == np.uint64(self._magic)
        anchors = np.flatnonzero(anchor_mask) + RABIN_WINDOW_SIZE
        cuts: List[int] = []
        start = 0
        pos = 0  # index into anchors
        while start < n:
            lo = start + self.min_size
            hi = start + self.max_size
            if lo >= n:
                cuts.append(n)
                break
            pos = int(np.searchsorted(anchors, lo, side="left"))
            if pos < len(anchors) and anchors[pos] <= min(hi, n):
                cut = int(anchors[pos])
            else:
                cut = min(hi, n)
            cuts.append(cut)
            start = cut
        return cuts

    def cut_points_streaming(self, data: bytes) -> List[int]:
        """Reference implementation with the incremental rolling hash.

        Byte-at-a-time, restarting the window at each boundary exactly as a
        streaming backup client would.  Kept (and cross-checked in tests)
        because it is the ground truth the vectorised path must match.
        """
        n = len(data)
        cuts: List[int] = []
        rabin = RabinFingerprint()
        start = 0
        i = 0
        while i < n:
            value = rabin.roll(data[i])
            length = i + 1 - start
            if length >= self.max_size or (
                length >= self.min_size
                and rabin.primed
                and (value & self._mask) == self._magic
            ):
                cuts.append(i + 1)
                start = i + 1
                rabin.reset()
            i += 1
        if not cuts or cuts[-1] != n:
            cuts.append(n)
        return cuts if n else []

    # -- streaming --------------------------------------------------------------
    def chunks_from_stream(self, stream, read_size: Optional[int] = None) -> Iterator[Chunk]:
        """Chunk a binary file object in constant memory.

        Reads ``read_size`` bytes at a time (default ``8 * max_size``) and
        emits every chunk whose end is *decided*: a cut is final once it is
        at least ``max_size`` short of the buffered frontier, because no
        later byte can move it.  The produced chunks are bit-identical to
        :meth:`chunks` on the whole buffer — verified by the test suite.

        Offsets are absolute positions in the stream.
        """
        if read_size is None:
            read_size = 8 * self.max_size
        if read_size < 2 * self.max_size:
            raise ValueError("read_size must be at least twice max_size")
        buffer = b""
        consumed = 0  # absolute offset of buffer[0]
        eof = False
        while not eof or buffer:
            while not eof and len(buffer) < read_size:
                block = stream.read(read_size)
                if not block:
                    eof = True
                    break
                buffer += block
            safe_end = len(buffer) if eof else len(buffer) - self.max_size
            start = 0
            for cut in self.cut_points(buffer):
                if cut > safe_end or (not eof and cut == safe_end):
                    break
                payload = buffer[start:cut]
                yield Chunk(payload, fingerprint(payload), consumed + start)
                start = cut
            if start == 0 and not eof:
                # No decidable cut yet (pathological small read_size guard).
                continue
            buffer = buffer[start:]
            consumed += start
            if eof and not buffer:
                break
            if eof and start == 0:
                # Final partial chunks all emitted by the loop above.
                break

    # -- chunking ---------------------------------------------------------------
    def chunks(self, data: bytes) -> Iterator[Chunk]:
        """Chunk a buffer; yields :class:`Chunk` with SHA-1 fingerprints."""
        start = 0
        for cut in self.cut_points(data):
            payload = data[start:cut]
            yield Chunk(payload, fingerprint(payload), start)
            start = cut

    def chunk_stats(self, data: bytes) -> dict:
        """Summary statistics of a chunking run (for tuning and tests)."""
        sizes = []
        start = 0
        for cut in self.cut_points(data):
            sizes.append(cut - start)
            start = cut
        if not sizes:
            return {"count": 0, "mean": 0.0, "min": 0, "max": 0}
        return {
            "count": len(sizes),
            "mean": float(np.mean(sizes)),
            "min": int(min(sizes)),
            "max": int(max(sizes)),
        }


def chunk_bytes(data: bytes, **kwargs) -> List[Chunk]:
    """One-shot convenience: chunk a buffer with default DEBAR parameters."""
    return list(ContentDefinedChunker(**kwargs).chunks(data))
