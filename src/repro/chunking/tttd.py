"""TTTD — the two-threshold, two-divisor chunking algorithm (ESHGHI05).

Cited by the paper (Section 7) among the improvements to basic CDC.  Plain
CDC hits its ``max_size`` bound on low-entropy regions and cuts there
arbitrarily, destroying the content-defined property exactly where it is
needed.  TTTD adds a second, easier *backup* divisor: while scanning past
``min_size``, positions matching the backup condition are remembered; if
the main divisor never fires before ``max_size``, the chunk ends at the
last backup anchor instead of the hard bound.  Backup anchors are still
content-defined, so edits inside long anchor-poor stretches shift far
fewer boundaries.

Shares the vectorised Rabin machinery with
:class:`~repro.chunking.cdc.ContentDefinedChunker`; an identical anchor
stream feeds both the main and backup conditions.
"""

from __future__ import annotations

from typing import Iterator, List

import numpy as np

from repro.chunking.cdc import ANCHOR_MAGIC, Chunk
from repro.chunking.rabin import RABIN_WINDOW_SIZE, window_fingerprints
from repro.core.fingerprint import fingerprint


class TTTDChunker:
    """Two-threshold two-divisor content-defined chunking.

    Parameters
    ----------
    avg_bits:
        Main divisor width: expected chunk size ``2^avg_bits``.
    backup_bits:
        Backup divisor width; defaults to ``avg_bits - 1`` (twice as easy
        to match), per the original TTTD recommendation of ``D' ~ D/2``.
    min_size, max_size:
        The two thresholds.
    """

    def __init__(
        self,
        avg_bits: int = 13,
        min_size: int = 2 * 1024,
        max_size: int = 64 * 1024,
        backup_bits: int | None = None,
    ) -> None:
        if avg_bits < 2 or avg_bits > 48:
            raise ValueError("avg_bits out of range")
        if backup_bits is None:
            backup_bits = avg_bits - 1
        if not 1 <= backup_bits < avg_bits:
            raise ValueError("backup divisor must be easier than the main divisor")
        if min_size < RABIN_WINDOW_SIZE:
            raise ValueError("min_size must cover at least one window")
        if not min_size <= (1 << avg_bits) <= max_size:
            raise ValueError("expected size must lie within [min_size, max_size]")
        self.avg_bits = avg_bits
        self.backup_bits = backup_bits
        self.min_size = min_size
        self.max_size = max_size
        self._main_mask = (1 << avg_bits) - 1
        self._main_magic = ANCHOR_MAGIC & self._main_mask
        self._backup_mask = (1 << backup_bits) - 1
        self._backup_magic = ANCHOR_MAGIC & self._backup_mask

    @property
    def expected_size(self) -> int:
        return 1 << self.avg_bits

    def cut_points(self, data: bytes) -> List[int]:
        """End offsets of every chunk (last one is ``len(data)``)."""
        n = len(data)
        if n == 0:
            return []
        fps = window_fingerprints(data)
        main = np.flatnonzero(
            (fps & np.uint64(self._main_mask)) == np.uint64(self._main_magic)
        ) + RABIN_WINDOW_SIZE
        backup = np.flatnonzero(
            (fps & np.uint64(self._backup_mask)) == np.uint64(self._backup_magic)
        ) + RABIN_WINDOW_SIZE

        cuts: List[int] = []
        start = 0
        while start < n:
            lo = start + self.min_size
            hi = start + self.max_size
            if lo >= n:
                cuts.append(n)
                break
            i = int(np.searchsorted(main, lo, side="left"))
            if i < len(main) and main[i] <= min(hi, n):
                cut = int(main[i])
            else:
                # No main anchor: fall back to the *last* backup anchor in
                # the window, else the hard threshold.
                j = int(np.searchsorted(backup, min(hi, n), side="right")) - 1
                if j >= 0 and backup[j] >= lo:
                    cut = int(backup[j])
                else:
                    cut = min(hi, n)
            cuts.append(cut)
            start = cut
        return cuts

    def chunks(self, data: bytes) -> Iterator[Chunk]:
        """Chunk a buffer; yields :class:`Chunk` with SHA-1 fingerprints."""
        start = 0
        for cut in self.cut_points(data):
            payload = data[start:cut]
            yield Chunk(payload, fingerprint(payload), start)
            start = cut

    def forced_cut_fraction(self, data: bytes) -> float:
        """Fraction of cuts that hit the hard ``max_size`` threshold
        (the pathology TTTD exists to reduce)."""
        cuts = self.cut_points(data)
        if not cuts:
            return 0.0
        forced = 0
        start = 0
        for cut in cuts:
            if cut - start == self.max_size:
                forced += 1
            start = cut
        return forced / len(cuts)
