"""Content-defined chunking: Rabin fingerprints, CDC anchoring, fixed baseline."""

from repro.chunking.rabin import RabinFingerprint, RABIN_WINDOW_SIZE
from repro.chunking.cdc import ContentDefinedChunker, Chunk, chunk_bytes
from repro.chunking.fixed import FixedSizeChunker
from repro.chunking.tttd import TTTDChunker

__all__ = [
    "RabinFingerprint",
    "RABIN_WINDOW_SIZE",
    "ContentDefinedChunker",
    "Chunk",
    "chunk_bytes",
    "FixedSizeChunker",
    "TTTDChunker",
]
