"""Rabin fingerprints over a sliding window (RABIN81, BRODER93).

A Rabin fingerprint treats a byte string as a polynomial over GF(2) and
reduces it modulo a fixed irreducible polynomial ``P`` of degree ``k``.  Its
two properties of interest here:

* it is *rolling* — the fingerprint of window ``[j+1, j+w]`` is computable
  from that of ``[j, j+w-1]`` in O(1); and
* it is *linear over GF(2)* — the fingerprint of a window equals the XOR of
  the (reduced) contributions of its individual bytes.

The linearity gives two interchangeable implementations: an incremental
rolling one for streaming, and a vectorised one (48 table-gather passes over
the whole buffer with NumPy) that computes every window fingerprint at once,
roughly 30x faster in pure Python terms.  Both produce bit-identical values
and are cross-checked in the test suite.

We use LBFS's degree-53 irreducible polynomial and its 48-byte window.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

#: LBFS's irreducible polynomial of degree 53 (0x3DA3358B4DC173 | x^53).
RABIN_POLY = (1 << 53) | 0x3DA3358B4DC173

#: Degree of the modulus polynomial.
RABIN_DEGREE = 53

#: The paper's window: "all overlapping fixed-sized (usually 48 bytes)
#: substrings of a file" (Section 3.2).
RABIN_WINDOW_SIZE = 48

_MASK = (1 << RABIN_DEGREE) - 1


def _poly_mod(value: int, poly: int = RABIN_POLY, degree: int = RABIN_DEGREE) -> int:
    """Reduce a GF(2) polynomial (as an int) modulo ``poly``."""
    while value.bit_length() > degree:
        value ^= poly << (value.bit_length() - 1 - degree)
    return value


def _shift_table(shift_bits: int) -> List[int]:
    """Table ``T[b] = (b << shift_bits) mod P`` for all byte values."""
    return [_poly_mod(b << shift_bits) for b in range(256)]


# T_append[hi]: reduction of the 8 bits that overflow past degree k when the
# fingerprint is multiplied by x^8.
_APPEND_TABLE = _shift_table(RABIN_DEGREE)

# T_pop[b]: contribution of the window's oldest byte, which sits at
# x^(8*(w-1)) when the window is full.
_POP_TABLE = _shift_table(8 * (RABIN_WINDOW_SIZE - 1))


class RabinFingerprint:
    """Incremental rolling Rabin fingerprint over a fixed-size window."""

    __slots__ = ("window_size", "_value", "_window", "_pos", "_filled")

    def __init__(self, window_size: int = RABIN_WINDOW_SIZE) -> None:
        if window_size != RABIN_WINDOW_SIZE:
            # The pop table is precomputed for the standard window; other
            # sizes would need their own table, which nothing here requires.
            raise ValueError(f"only the {RABIN_WINDOW_SIZE}-byte window is supported")
        self.window_size = window_size
        self._value = 0
        self._window = bytearray(window_size)
        self._pos = 0
        self._filled = 0

    @property
    def value(self) -> int:
        """Current fingerprint of the bytes in the window."""
        return self._value

    @property
    def primed(self) -> bool:
        """True once a full window has been consumed."""
        return self._filled >= self.window_size

    def reset(self) -> None:
        """Forget all state (used at each chunk boundary by the chunker)."""
        self._value = 0
        self._pos = 0
        self._filled = 0

    def roll(self, byte: int) -> int:
        """Slide the window one byte forward; return the new fingerprint."""
        value = self._value
        if self._filled >= self.window_size:
            value ^= _POP_TABLE[self._window[self._pos]]
        else:
            self._filled += 1
        # Multiply by x^8, reduce the overflow, add the new byte.
        value = ((value << 8) & _MASK) ^ byte ^ _APPEND_TABLE[value >> (RABIN_DEGREE - 8)]
        self._window[self._pos] = byte
        self._pos = (self._pos + 1) % self.window_size
        self._value = value
        return value

    def update(self, data: bytes) -> int:
        """Roll over every byte of ``data``; return the final fingerprint."""
        for b in data:
            self.roll(b)
        return self._value


def window_fingerprints(data: bytes, out: Optional[np.ndarray] = None) -> np.ndarray:
    """Vectorised Rabin fingerprints of every full window in ``data``.

    Returns an array ``f`` of length ``len(data) - w + 1`` where ``f[j]`` is
    the fingerprint of ``data[j : j + w]`` — identical to what
    :class:`RabinFingerprint` reports after rolling past ``data[j + w - 1]``.
    Exploits GF(2) linearity: each window fingerprint is the XOR of 48
    per-position table lookups, so 48 vectorised gather/XOR passes over the
    buffer compute all of them.
    """
    w = RABIN_WINDOW_SIZE
    n = len(data) - w + 1
    if n <= 0:
        return np.empty(0, dtype=np.uint64)
    buf = np.frombuffer(data, dtype=np.uint8)
    if out is None:
        out = np.zeros(n, dtype=np.uint64)
    else:
        if len(out) < n:
            raise ValueError("output buffer too small")
        out = out[:n]
        out[:] = 0
    for i in range(w):
        table = _POSITION_TABLES[i]
        out ^= table[buf[i : i + n]]
    return out


# Per-position contribution tables for the vectorised path:
# _POSITION_TABLES[i][b] = (b << 8*(w-1-i)) mod P.
_POSITION_TABLES = [
    np.array(_shift_table(8 * (RABIN_WINDOW_SIZE - 1 - i)), dtype=np.uint64)
    for i in range(RABIN_WINDOW_SIZE)
]
