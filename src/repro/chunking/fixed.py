"""Fixed-size blocking: the baseline CDC is compared against (Section 3.2).

The paper motivates CDC by the weakness reproduced here: with fixed-size
blocks, inserting one byte at the front of a file shifts every subsequent
block boundary, so nothing after the edit de-duplicates against the
previous version.  Kept as a baseline for the chunking ablation benchmark.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.chunking.cdc import Chunk
from repro.core.fingerprint import fingerprint


class FixedSizeChunker:
    """Divide a stream into fixed-size blocks (last block may be short)."""

    def __init__(self, block_size: int = 8 * 1024) -> None:
        if block_size < 1:
            raise ValueError("block_size must be positive")
        self.block_size = block_size

    def cut_points(self, data: bytes) -> List[int]:
        """End offsets of every block."""
        n = len(data)
        cuts = list(range(self.block_size, n, self.block_size))
        if n:
            cuts.append(n)
        return cuts

    def chunks(self, data: bytes) -> Iterator[Chunk]:
        """Yield fixed-size blocks with SHA-1 fingerprints."""
        start = 0
        for cut in self.cut_points(data):
            payload = data[start:cut]
            yield Chunk(payload, fingerprint(payload), start)
            start = cut
