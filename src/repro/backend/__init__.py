"""Pluggable storage backends: the seam under the container repository.

Sealed SISL containers are immutable — ideal cold-tier objects.  This
package abstracts *where their bytes live* behind a small key/value
interface (:class:`StorageBackend`: put / get / get_range / get_ranges /
delete / list / stat) with two implementations:

* :class:`LocalDiskBackend` — one file per object under a root directory,
  today's behaviour and the default (zero regression);
* :class:`ObjectStoreBackend` — an S3-style object store with byte-range
  reads, a simulated per-request latency/throughput profile, and fault
  injection (throttling, transient 5xx-style errors) behind retry with
  exponential backoff.

On top of the interface sit the cold-tier read planner (adjacent chunk
ranges coalesced into batched multi-range GETs — :mod:`repro.backend.planner`),
a pluggable container-metadata cache (:mod:`repro.backend.cache`), and the
hot→cold lifecycle manager (:mod:`repro.backend.lifecycle`).  The tiered
repository that threads them under the existing vault stack is
:class:`repro.storage.tiered.TieredChunkRepository`.  See DESIGN.md §13.
"""

from repro.backend.base import (
    BackendError,
    BackendTelemetry,
    ObjectMissingError,
    ObjectStat,
    RetryExhaustedError,
    StorageBackend,
    ThrottledError,
    TransientBackendError,
)
from repro.backend.cache import LruMetaCache, MetaCache, NullMetaCache
from repro.backend.lifecycle import (
    ContainerAge,
    LifecycleManager,
    LifecyclePolicy,
    MigrationReport,
)
from repro.backend.localdisk import LocalDiskBackend
from repro.backend.objectstore import (
    BackendFaultRule,
    ObjectStoreBackend,
    RequestProfile,
)
from repro.backend.planner import ColdChunkReader

__all__ = [
    "BackendError",
    "BackendFaultRule",
    "BackendTelemetry",
    "ColdChunkReader",
    "ContainerAge",
    "LifecycleManager",
    "LifecyclePolicy",
    "LocalDiskBackend",
    "LruMetaCache",
    "MetaCache",
    "MigrationReport",
    "NullMetaCache",
    "ObjectMissingError",
    "ObjectStat",
    "ObjectStoreBackend",
    "RequestProfile",
    "RetryExhaustedError",
    "StorageBackend",
    "ThrottledError",
    "TransientBackendError",
]
