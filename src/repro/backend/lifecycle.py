"""Hot -> cold lifecycle: which sealed containers move to the object store.

Backup workloads age predictably: the newest run's containers serve
restores and dedup lookups; containers only older runs reference mostly
sit idle.  The lifecycle manager scores every **hot** container from the
vault catalog —

* **age** — runs elapsed since the first run referencing the container;
* **idle** — runs elapsed since the *last* run referencing it (0 while
  the newest run still points at it);

and migrates the ones a :class:`LifecyclePolicy` deems cold (default:
older than one run and allowed to be current — age gates, idle refines).
Containers no catalogued run references at all (GC leftovers awaiting
reclamation) score maximally old and idle.

Migration itself is :meth:`TieredChunkRepository.migrate_to_cold` —
put, verify, unlink — so a crash mid-pass is harmless and the pass is
re-runnable.  ``repro migrate`` and ``repro tier-status`` drive this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.backend.base import BackendError


@dataclass(frozen=True)
class LifecyclePolicy:
    """When a hot container becomes eligible for the cold tier.

    ``min_age_runs``: runs that must have elapsed since the container was
    first referenced.  ``min_idle_runs``: runs since it was *last*
    referenced — raise it to keep containers the newest runs still share
    (dedup hits) on fast media.
    """

    min_age_runs: int = 1
    min_idle_runs: int = 0

    def eligible(self, age_runs: int, idle_runs: int) -> bool:
        return age_runs >= self.min_age_runs and idle_runs >= self.min_idle_runs


@dataclass
class ContainerAge:
    """Lifecycle score of one container."""

    container_id: int
    tier: str
    age_runs: int
    idle_runs: int
    eligible: bool

    def to_json(self) -> dict:
        return {
            "container_id": self.container_id,
            "tier": self.tier,
            "age_runs": self.age_runs,
            "idle_runs": self.idle_runs,
            "eligible": self.eligible,
        }


@dataclass
class MigrationReport:
    """Outcome of one ``migrate`` pass."""

    examined: int = 0
    migrated: int = 0
    bytes_moved: int = 0
    skipped: int = 0            #: hot but not eligible under the policy
    already_cold: int = 0
    failed: List[str] = field(default_factory=list)

    def to_json(self) -> dict:
        return {
            "examined": self.examined,
            "migrated": self.migrated,
            "bytes_moved": self.bytes_moved,
            "skipped": self.skipped,
            "already_cold": self.already_cold,
            "failed": list(self.failed),
        }


class LifecycleManager:
    """Scores and migrates one vault's containers (see module docstring)."""

    def __init__(self, vault, policy: Optional[LifecyclePolicy] = None) -> None:
        self.vault = vault
        self.policy = policy if policy is not None else LifecyclePolicy()
        registry = vault.telemetry
        self._t_migrated = registry.counter(
            "storage.migrations", "containers migrated hot -> cold"
        ).labels()
        self._t_bytes = registry.counter(
            "storage.migrated_bytes", "container bytes migrated hot -> cold"
        ).labels()

    # -- scoring --------------------------------------------------------------
    def _reference_spans(self) -> Dict[int, List[int]]:
        """container id -> [first run ordinal, last run ordinal] (1-based)."""
        index = self.vault.tpds.index
        spans: Dict[int, List[int]] = {}
        for ordinal, run in enumerate(self.vault._catalog["runs"], start=1):
            for f in run["files"]:
                for h in f["fingerprints"]:
                    cid = index.lookup(bytes.fromhex(h))
                    if cid is None:
                        continue
                    span = spans.get(cid)
                    if span is None:
                        spans[cid] = [ordinal, ordinal]
                    else:
                        span[1] = ordinal
        return spans

    def ages(self) -> List[ContainerAge]:
        """Lifecycle scores for every container, hottest-ID order."""
        repo = self.vault.repository
        spans = self._reference_spans()
        total = len(self.vault._catalog["runs"])
        out: List[ContainerAge] = []
        for cid in repo.container_ids():
            try:
                tier = repo.tier_of(cid)
            except KeyError:
                continue  # removed mid-scan
            span = spans.get(cid)
            if span is None:
                age = idle = total  # unreferenced: maximally cold
            else:
                age = total - span[0]
                idle = total - span[1]
            out.append(ContainerAge(
                cid, tier, age, idle,
                eligible=self.policy.eligible(age, idle),
            ))
        return out

    # -- migration ------------------------------------------------------------
    def migrate(
        self, limit: Optional[int] = None, dry_run: bool = False
    ) -> MigrationReport:
        """Move every eligible hot container cold (up to ``limit``).

        A backend failure on one container is recorded and the pass moves
        on — a half-throttled object store degrades a migration pass, it
        does not abort it.
        """
        repo = self.vault.repository
        if repo.cold is None:
            raise RuntimeError(
                "no cold tier attached (run enable_cold_tier / --cold-root)"
            )
        report = MigrationReport()
        for score in self.ages():
            if score.tier != "hot":
                report.already_cold += 1
                continue
            report.examined += 1
            if not score.eligible:
                report.skipped += 1
                continue
            if limit is not None and report.migrated >= limit:
                report.skipped += 1
                continue
            if dry_run:
                report.migrated += 1
                continue
            try:
                moved = repo.migrate_to_cold(score.container_id)
            except BackendError as exc:
                report.failed.append(
                    f"container {score.container_id}: {exc}"
                )
                continue
            report.migrated += 1
            report.bytes_moved += moved
            self._t_migrated.inc()
            self._t_bytes.inc(moved)
        return report

    # -- reporting ------------------------------------------------------------
    def tier_status(self) -> dict:
        """The ``repro tier-status`` document: tier totals + per-container
        lifecycle scores + policy in force."""
        repo = self.vault.repository
        doc = {
            "cold_attached": repo.cold is not None,
            "policy": {
                "min_age_runs": self.policy.min_age_runs,
                "min_idle_runs": self.policy.min_idle_runs,
            },
            "tiers": repo.tier_report(),
            "containers": [score.to_json() for score in self.ages()],
        }
        return doc
