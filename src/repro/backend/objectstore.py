"""An S3-style object-store backend with ranged reads and fault injection.

The "bucket" is a directory (objects persist across processes, which is
what lets separate CLI invocations — migrate, then restore, then scrub —
share one cold tier), but every access goes through a *request* model:

* each verb is one request; ``get_ranges`` answers any number of byte
  ranges in a single request (the multi-range GET that makes adjacent-GET
  batching pay);
* a :class:`RequestProfile` charges simulated seconds per request
  (first-byte latency + bytes/throughput + a small per-extra-range cost),
  accumulated in :attr:`ObjectStoreBackend.simulated_seconds` and mirrored
  to the ``storage.simulated_seconds`` counter — benchmarks read it to
  model cold-restore cost without sleeping;
* :class:`BackendFaultRule` injects **throttling** (503 SlowDown) and
  **transient 5xx errors** per operation.  The backend retries both with
  exponential backoff + deterministic jitter; when the budget runs out it
  raises :class:`~repro.backend.base.RetryExhaustedError`.

Fault rules load from ``_faults.json`` in the bucket root when present,
so cross-process drills (CI) inject faults by dropping a file::

    {"rules": [{"op": "get_ranges", "kind": "throttle", "every": 4},
               {"op": "get_range", "kind": "transient", "times": 2}]}

Keys starting with ``_`` are reserved for such control files and never
listed as objects.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro.backend.base import (
    BackendTelemetry,
    ObjectMissingError,
    ObjectStat,
    RetryExhaustedError,
    StorageBackend,
    ThrottledError,
    TransientBackendError,
)
from repro.telemetry.registry import MetricsRegistry, get_registry

PathLike = Union[str, Path]

#: Control file the backend reads fault rules from (bucket root).
FAULTS_FILE = "_faults.json"


@dataclass
class RequestProfile:
    """Simulated cost model of one object-store request.

    Defaults approximate a same-region S3 GET: ~30 ms to first byte,
    ~100 MB/s streaming, ~2 ms per additional range of a multi-range GET.
    """

    base_latency_s: float = 0.030
    throughput_bps: float = 100e6
    range_overhead_s: float = 0.002

    def charge(self, n_ranges: int, payload_bytes: int) -> float:
        extra = max(0, n_ranges - 1) * self.range_overhead_s
        transfer = payload_bytes / self.throughput_bps if self.throughput_bps else 0.0
        return self.base_latency_s + extra + transfer

    def to_json(self) -> dict:
        return {
            "base_latency_s": self.base_latency_s,
            "throughput_bps": self.throughput_bps,
            "range_overhead_s": self.range_overhead_s,
        }

    @classmethod
    def from_json(cls, doc: Optional[dict]) -> "RequestProfile":
        doc = doc or {}
        return cls(
            base_latency_s=float(doc.get("base_latency_s", cls.base_latency_s)),
            throughput_bps=float(doc.get("throughput_bps", cls.throughput_bps)),
            range_overhead_s=float(doc.get("range_overhead_s", cls.range_overhead_s)),
        )


@dataclass
class BackendFaultRule:
    """One injected request fault (mirrors the fsshim's FaultRule idiom).

    ``op`` is a verb name or ``"*"``.  ``kind`` is ``"throttle"`` (503)
    or ``"transient"`` (500).  The rule skips its first ``after`` matching
    requests, then fires ``times`` times (``None`` = forever); with
    ``every`` set it instead fires on every Nth matching request — the
    steady-state throttling shape.
    """

    op: str
    kind: str
    after: int = 0
    times: Optional[int] = 1
    every: Optional[int] = None
    fired: int = field(default=0, init=False)
    _seen: int = field(default=0, init=False)

    def matches(self, op: str) -> bool:
        if self.op not in ("*", op):
            return False
        self._seen += 1
        if self._seen <= self.after:
            return False
        if self.every is not None:
            if (self._seen - self.after) % self.every != 0:
                return False
        elif self.times is not None and self.fired >= self.times:
            return False
        self.fired += 1
        return True

    @classmethod
    def from_json(cls, doc: dict) -> "BackendFaultRule":
        return cls(
            op=str(doc.get("op", "*")),
            kind=str(doc.get("kind", "transient")),
            after=int(doc.get("after", 0)),
            times=(None if doc.get("times") is None else int(doc["times"])),
            every=(None if doc.get("every") is None else int(doc["every"])),
        )


class ObjectStoreBackend(StorageBackend):
    """Directory-backed S3-style store with a request model and retries."""

    name = "object"

    def __init__(
        self,
        root: PathLike,
        profile: Optional[RequestProfile] = None,
        faults: Optional[List[BackendFaultRule]] = None,
        registry: Optional[MetricsRegistry] = None,
        attempts: int = 4,
        backoff_base_s: float = 0.01,
        backoff_max_s: float = 0.5,
        sleep: Callable[[float], None] = time.sleep,
        create: bool = True,
    ) -> None:
        self.root = Path(root)
        if create:
            self.root.mkdir(parents=True, exist_ok=True)
        self.profile = profile if profile is not None else RequestProfile()
        self.faults: List[BackendFaultRule] = list(faults or [])
        self.faults.extend(self._load_fault_file())
        self.attempts = max(1, attempts)
        self.backoff_base_s = backoff_base_s
        self.backoff_max_s = backoff_max_s
        self.sleep = sleep
        registry = registry if registry is not None else get_registry()
        self.telemetry = BackendTelemetry(self.name, registry)
        self._t_sim = registry.counter(
            "storage.simulated_seconds",
            "simulated request seconds charged by the object-store model",
        ).labels(backend=self.name)
        #: Requests that reached the (simulated) service, including the
        #: ones a fault then failed — the per-request accounting benchmarks
        #: read.  Retries count: every attempt is a billable request.
        self.requests_issued = 0
        self.simulated_seconds = 0.0

    # -- bucket plumbing ------------------------------------------------------
    def _load_fault_file(self) -> List[BackendFaultRule]:
        path = self.root / FAULTS_FILE
        if not path.exists():
            return []
        try:
            doc = json.loads(path.read_text())
        except (ValueError, OSError):
            return []
        return [BackendFaultRule.from_json(r) for r in doc.get("rules", [])]

    def _path(self, key: str) -> Path:
        if not key or key.startswith(("/", "\\", "_")) or ".." in key.split("/"):
            raise ValueError(f"unsafe object key {key!r}")
        return self.root / key

    # -- the request engine ---------------------------------------------------
    def _inject(self, op: str) -> None:
        for rule in self.faults:
            if rule.kind == "throttle" and rule.matches(op):
                self.telemetry.throttled.inc()
                raise ThrottledError(f"{op}: throttled (503 SlowDown)")
            if rule.kind == "transient" and rule.matches(op):
                raise TransientBackendError(f"{op}: transient backend error (500)")

    def _request(self, op: str, fn: Callable[[], object], n_ranges: int = 1):
        """Run one logical request under the retry policy.

        Each attempt is accounted as a request (base latency charged even
        for failed attempts — the wire round trip happened); payload
        transfer is charged by the caller on success via :meth:`_charge`.
        """
        delay = self.backoff_base_s
        last: Optional[Exception] = None
        for attempt in range(self.attempts):
            self.telemetry.request(op)
            self.requests_issued += 1
            self._account(self.profile.charge(n_ranges, 0))
            try:
                self._inject(op)
                return fn()
            except TransientBackendError as exc:
                last = exc
                if attempt == self.attempts - 1:
                    break
                self.telemetry.retries.inc()
                # Deterministic jitter: spread retries without a PRNG.
                self.sleep(min(delay * (1.0 + 0.1 * attempt), self.backoff_max_s))
                delay *= 2
        self.telemetry.errors.inc()
        raise RetryExhaustedError(
            f"{op}: {self.attempts} attempts exhausted: {last}"
        ) from last

    def _account(self, seconds: float) -> None:
        self.simulated_seconds += seconds
        self._t_sim.inc(seconds)

    def _charge_payload(self, nbytes: int) -> None:
        # Transfer time beyond the per-request base already charged.
        base = self.profile.base_latency_s
        self._account(self.profile.charge(1, nbytes) - base)

    # -- the verbs ------------------------------------------------------------
    def put(self, key: str, data: bytes) -> None:
        path = self._path(key)

        def do() -> None:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(path.suffix + ".tmp")
            tmp.write_bytes(data)
            tmp.replace(path)

        self._request("put", do)
        self._charge_payload(len(data))
        self.telemetry.bytes_stored.inc(len(data))

    def _read_all(self, key: str) -> bytes:
        path = self._path(key)
        if not path.exists():
            raise ObjectMissingError(f"no object {key!r} in bucket {self.root}")
        return path.read_bytes()

    def get(self, key: str) -> bytes:
        data = self._request("get", lambda: self._read_all(key))
        self._charge_payload(len(data))
        self.telemetry.single_gets.inc()
        self.telemetry.bytes_fetched.inc(len(data))
        return data

    def _read_range(self, key: str, offset: int, length: int) -> bytes:
        path = self._path(key)
        if not path.exists():
            raise ObjectMissingError(f"no object {key!r} in bucket {self.root}")
        with open(path, "rb") as fh:
            fh.seek(offset)
            return fh.read(length)

    def get_range(self, key: str, offset: int, length: int) -> bytes:
        data = self._request(
            "get_range", lambda: self._read_range(key, offset, length)
        )
        self._charge_payload(len(data))
        self.telemetry.single_gets.inc()
        self.telemetry.bytes_fetched.inc(len(data))
        return data

    def get_ranges(
        self, key: str, ranges: Sequence[Tuple[int, int]]
    ) -> List[bytes]:
        """All ranges in **one** request (the batch call)."""
        if not ranges:
            return []

        def do() -> List[bytes]:
            return [self._read_range(key, off, ln) for off, ln in ranges]

        out = self._request("get_ranges", do, n_ranges=len(ranges))
        total = sum(len(d) for d in out)
        self._charge_payload(total)
        self._account(max(0, len(ranges) - 1) * self.profile.range_overhead_s)
        self.telemetry.batched_gets.inc()
        self.telemetry.bytes_fetched.inc(total)
        return out

    def delete(self, key: str) -> None:
        path = self._path(key)

        def do() -> None:
            if not path.exists():
                raise ObjectMissingError(
                    f"no object {key!r} in bucket {self.root}"
                )
            path.unlink()

        self._request("delete", do)

    def list_keys(self, prefix: str = "") -> List[str]:
        def do() -> List[str]:
            if not self.root.is_dir():
                return []
            keys = [
                str(p.relative_to(self.root))
                for p in self.root.rglob("*")
                if p.is_file()
                and not p.name.endswith(".tmp")
                and not str(p.relative_to(self.root)).startswith("_")
            ]
            return sorted(k for k in keys if k.startswith(prefix))

        return self._request("list", do)

    def stat(self, key: str) -> ObjectStat:
        path = self._path(key)

        def do() -> ObjectStat:
            if not path.exists():
                raise ObjectMissingError(
                    f"no object {key!r} in bucket {self.root}"
                )
            return ObjectStat(key, path.stat().st_size)

        return self._request("stat", do)
