"""Pluggable container-metadata caches for the cold tier.

A cold container's metadata section (its chunk records) is needed by
every ranged read, scrub pass and lifecycle scan; re-fetching it from the
object store per access would double the request count.  The tiered
repository therefore reads metadata through a :class:`MetaCache` — an
injectable interface with an in-memory LRU adapter here and room for
out-of-process adapters (Redis-style) behind the same three methods.

Cache values are treated as immutable by contract (sealed containers
never change; invalidation happens only on repair/GC).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional

from repro.telemetry.registry import MetricsRegistry, get_registry


class MetaCache:
    """Interface: container id -> parsed metadata (opaque to the cache)."""

    def get(self, container_id: int):
        raise NotImplementedError

    def put(self, container_id: int, meta) -> None:
        raise NotImplementedError

    def invalidate(self, container_id: int) -> None:
        raise NotImplementedError

    def clear(self) -> None:
        raise NotImplementedError

    @property
    def hit_rate(self) -> float:
        return 0.0


class NullMetaCache(MetaCache):
    """No caching: every access misses (the measurement baseline)."""

    def get(self, container_id: int):
        return None

    def put(self, container_id: int, meta) -> None:
        pass

    def invalidate(self, container_id: int) -> None:
        pass

    def clear(self) -> None:
        pass


class LruMetaCache(MetaCache):
    """In-memory LRU adapter with ``storage.meta_cache_*`` telemetry."""

    def __init__(
        self,
        capacity: int = 1024,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[int, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        registry = registry if registry is not None else get_registry()
        self._t_hits = registry.counter(
            "storage.meta_cache_hits", "container-metadata cache hits"
        ).labels()
        self._t_misses = registry.counter(
            "storage.meta_cache_misses", "container-metadata cache misses"
        ).labels()

    def get(self, container_id: int):
        meta = self._entries.get(container_id)
        if meta is None:
            self.misses += 1
            self._t_misses.inc()
            return None
        self._entries.move_to_end(container_id)
        self.hits += 1
        self._t_hits.inc()
        return meta

    def put(self, container_id: int, meta) -> None:
        self._entries[container_id] = meta
        self._entries.move_to_end(container_id)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def invalidate(self, container_id: int) -> None:
        self._entries.pop(container_id, None)

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, container_id: int) -> bool:
        return container_id in self._entries

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def status(self) -> Dict[str, float]:
        return {
            "entries": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
        }
