"""The local-disk backend: one file per object, today's behaviour.

Keys map to paths under a root directory (``/`` in a key makes a
subdirectory), all I/O goes through the vault's filesystem shim so the
existing fault-injection and ENOSPC machinery keeps working, and
``get_range`` uses positioned reads — a ranged read of a large container
file never loads the whole image.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

from repro.backend.base import (
    BackendTelemetry,
    ObjectMissingError,
    ObjectStat,
    StorageBackend,
)
from repro.durability.fsshim import LocalFs
from repro.telemetry.registry import MetricsRegistry

PathLike = Union[str, Path]


def _safe_key(key: str) -> str:
    if not key or key.startswith(("/", "\\")) or ".." in key.split("/"):
        raise ValueError(f"unsafe backend key {key!r}")
    return key


class LocalDiskBackend(StorageBackend):
    """Objects as plain files under ``root`` (the default, hot tier)."""

    name = "local"

    def __init__(
        self,
        root: PathLike,
        fs: Optional[LocalFs] = None,
        registry: Optional[MetricsRegistry] = None,
        create: bool = True,
    ) -> None:
        self.root = Path(root)
        self.fs = fs if fs is not None else LocalFs()
        if create:
            self.root.mkdir(parents=True, exist_ok=True)
        self.telemetry = BackendTelemetry(self.name, registry)

    def _path(self, key: str) -> Path:
        return self.root / _safe_key(key)

    def put(self, key: str, data: bytes) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        self.telemetry.request("put")
        self.fs.write_file(path, data)
        self.telemetry.bytes_stored.inc(len(data))

    def get(self, key: str) -> bytes:
        path = self._path(key)
        self.telemetry.request("get")
        if not self.fs.exists(path):
            self.telemetry.errors.inc()
            raise ObjectMissingError(f"no object {key!r} under {self.root}")
        data = self.fs.read_file(path)
        self.telemetry.single_gets.inc()
        self.telemetry.bytes_fetched.inc(len(data))
        return data

    def get_range(self, key: str, offset: int, length: int) -> bytes:
        path = self._path(key)
        self.telemetry.request("get_range")
        if not self.fs.exists(path):
            self.telemetry.errors.inc()
            raise ObjectMissingError(f"no object {key!r} under {self.root}")
        with open(path, "rb") as fh:
            data = self.fs.pread(fh, offset, length)
        self.telemetry.single_gets.inc()
        self.telemetry.bytes_fetched.inc(len(data))
        return data

    def get_ranges(
        self, key: str, ranges: Sequence[Tuple[int, int]]
    ) -> List[bytes]:
        """One positioned read per range over a single open handle.

        Local disk has no per-request round trip to amortize, so this
        stays one *syscall* per range but only one request in telemetry —
        the honest analogue of a multi-range GET.
        """
        path = self._path(key)
        self.telemetry.request("get_ranges")
        if not self.fs.exists(path):
            self.telemetry.errors.inc()
            raise ObjectMissingError(f"no object {key!r} under {self.root}")
        out: List[bytes] = []
        with open(path, "rb") as fh:
            for offset, length in ranges:
                out.append(self.fs.pread(fh, offset, length))
        self.telemetry.batched_gets.inc()
        self.telemetry.bytes_fetched.inc(sum(len(d) for d in out))
        return out

    def delete(self, key: str) -> None:
        path = self._path(key)
        self.telemetry.request("delete")
        if not self.fs.exists(path):
            raise ObjectMissingError(f"no object {key!r} under {self.root}")
        self.fs.unlink(path)

    def list_keys(self, prefix: str = "") -> List[str]:
        self.telemetry.request("list")
        if not self.root.is_dir():
            return []
        keys = [
            str(p.relative_to(self.root))
            for p in self.root.rglob("*")
            if p.is_file()
        ]
        return sorted(k for k in keys if k.startswith(prefix))

    def stat(self, key: str) -> ObjectStat:
        path = self._path(key)
        self.telemetry.request("stat")
        if not self.fs.exists(path):
            raise ObjectMissingError(f"no object {key!r} under {self.root}")
        return ObjectStat(key, self.fs.file_size(path))
