"""The cold-tier read planner: adjacent chunk ranges become batched GETs.

A restore knows its full fingerprint sequence up front (the catalog's
per-file fingerprint lists), and SISL containers store chunks in stream
order — so consecutive restore reads usually land on *adjacent byte
ranges of the same cold container*.  :class:`ColdChunkReader` exploits
that: primed with the plan, each cold miss looks ahead, groups the
upcoming planned fingerprints that live in the same container, coalesces
their payload ranges (:func:`repro.util.ranges.coalesce`), and fetches
them with **one multi-range GET** instead of one request per chunk.

Hot chunks take the normal path (the chunk store's LPC does the batching
there); the planner only fronts containers the lifecycle manager has
migrated cold.  ``batch=False`` degrades to one ranged GET per chunk —
the unbatched baseline ``bench_cold_restore`` compares against.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

from repro.util.ranges import SegmentBuffer, Span, coalesce

#: Plan fingerprints examined per fill window.
PLAN_WINDOW = 64

#: Coalesce payload ranges whose gap is below this many bytes.
RANGE_GAP = 4096

#: Per-container segment buffers kept alive at once.
MAX_BUFFERS = 8


class ColdChunkReader:
    """``read_chunk`` over a tiered repository with planned range batching.

    Parameters
    ----------
    repository:
        A :class:`~repro.storage.tiered.TieredChunkRepository` (or any
        object with ``tier_of``/``fetch_meta``/``read_ranges``).
    index:
        Fingerprint -> container ID resolver (``lookup``).
    hot_reader:
        Where hot-tier reads go — normally the vault's
        :class:`~repro.server.chunk_store.ChunkStore` so the LPC keeps
        working; anything with ``read_chunk(fp)``.
    batch:
        ``False`` disables planning: every cold chunk costs one ranged
        GET (the measurement baseline).
    """

    def __init__(
        self,
        repository,
        index,
        hot_reader,
        batch: bool = True,
        window: int = PLAN_WINDOW,
        max_gap: int = RANGE_GAP,
        registry=None,
        name: str = "cold-tier",
    ) -> None:
        self.repository = repository
        self.index = index
        self.hot_reader = hot_reader
        self.batch = batch
        self.window = window
        self.max_gap = max_gap
        self.name = name
        self._plan: List[bytes] = []
        self._plan_pos = 0
        self._buffers: "OrderedDict[int, SegmentBuffer]" = OrderedDict()
        self._meta: Dict[int, Tuple[Dict[bytes, object], int]] = {}
        self.hot_chunks = 0
        self.cold_chunks = 0
        self.fill_requests = 0
        if registry is None:
            from repro.telemetry.registry import get_registry

            registry = get_registry()
        self._t_hot = registry.counter(
            "storage.planner_hot_chunks", "chunk reads served from the hot tier"
        ).labels()
        self._t_cold = registry.counter(
            "storage.planner_cold_chunks", "chunk reads served from the cold tier"
        ).labels()
        self._t_fills = registry.counter(
            "storage.planner_fills", "cold buffer fills (one backend request each)"
        ).labels()

    def plan(self, fps: Sequence[bytes]) -> None:
        """Prime the reader with the restore's fingerprint sequence."""
        self._plan = list(fps)
        self._plan_pos = 0

    # -- cold-container metadata ---------------------------------------------
    def _meta_for(self, cid: int) -> Tuple[Dict[bytes, object], int]:
        cached = self._meta.get(cid)
        if cached is not None:
            return cached
        records, data_start, _ = self.repository.fetch_meta(cid)
        meta = ({r.fingerprint: r for r in records}, data_start)
        self._meta[cid] = meta
        return meta

    def _buffer(self, cid: int) -> SegmentBuffer:
        buf = self._buffers.get(cid)
        if buf is None:
            buf = SegmentBuffer()
            self._buffers[cid] = buf
            while len(self._buffers) > MAX_BUFFERS:
                old, _ = self._buffers.popitem(last=False)
                self._meta.pop(old, None)
        else:
            self._buffers.move_to_end(cid)
        return buf

    # -- the fill window ------------------------------------------------------
    def _window_fps(self, fp: bytes, cid: int) -> List[bytes]:
        """Upcoming planned fingerprints living in container ``cid``.

        Scans ahead without committing (off-plan probes must not burn the
        plan — same contract as the wire reader); commits the position
        only when ``fp`` is found on the plan.
        """
        pos = self._plan_pos
        while pos < len(self._plan) and self._plan[pos] != fp:
            pos += 1
        if pos >= len(self._plan):
            return [fp]
        self._plan_pos = pos + 1
        out: List[bytes] = []
        seen = set()
        for planned in self._plan[pos : pos + self.window]:
            if planned in seen:
                continue
            seen.add(planned)
            if planned == fp or self.index.lookup(planned) == cid:
                out.append(planned)
        return out

    def _fill(self, cid: int, fp: bytes) -> SegmentBuffer:
        recmap, data_start = self._meta_for(cid)
        fps = self._window_fps(fp, cid) if self.batch else [fp]
        spans = []
        for planned in fps:
            rec = recmap.get(planned)
            if rec is not None and rec.size:
                spans.append(Span(data_start + rec.offset, rec.size, rec))
        groups = coalesce(spans, max_gap=self.max_gap if self.batch else 0)
        buf = self._buffer(cid)
        ranges = [
            (g.start, g.length)
            for g in groups
            if not buf.covers(g.start, g.length)
        ]
        if ranges:
            self.fill_requests += 1
            self._t_fills.inc()
            for (start, _), blob in zip(
                ranges, self.repository.read_ranges(cid, ranges)
            ):
                buf.add(start, blob)
        return buf

    # -- the ChunkStore-compatible surface ------------------------------------
    def read_chunk(self, fp: bytes) -> bytes:
        cid = self.index.lookup(fp)
        if cid is None:
            raise KeyError(f"fingerprint {fp.hex()[:12]} not stored")
        if self.repository.tier_of(cid) == "hot":
            self.hot_chunks += 1
            self._t_hot.inc()
            return self.hot_reader.read_chunk(fp)
        recmap, data_start = self._meta_for(cid)
        rec = recmap.get(fp)
        if rec is None:
            raise KeyError(
                f"fingerprint {fp.hex()[:12]} not in container {cid}"
            )
        start = data_start + rec.offset
        buf = self._buffers.get(cid)
        if buf is None or not buf.covers(start, rec.size):
            buf = self._fill(cid, fp)
        data = buf.read(start, rec.size)
        self.cold_chunks += 1
        self._t_cold.inc()
        return data
