"""The storage-backend interface and its error taxonomy.

Every backend speaks the same six verbs over opaque keys:

========== =============================================================
``put``     store an immutable object (overwrite = idempotent re-put)
``get``     whole object
``get_range``  one byte range
``get_ranges`` several byte ranges of one object in a single request —
            the multi-range batch call the cold-tier read planner feeds
``delete``  drop an object (missing = KeyError-compatible error)
``list_keys`` keys under a prefix, sorted
``stat``    size without bytes
========== =============================================================

Errors split into *permanent* (:class:`ObjectMissingError`, corrupt
request) and *transient* (:class:`TransientBackendError` — a 5xx-style
hiccup; :class:`ThrottledError` — a 503/SlowDown).  Backends with a retry
policy absorb transients internally; when the budget runs out they raise
:class:`RetryExhaustedError`, which is **not** transient — callers treat
it as the backend being down.

``ObjectMissingError`` subclasses ``KeyError`` so repository code that
already catches ``KeyError`` for "container not stored" keeps working
unchanged against any backend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.telemetry.registry import MetricsRegistry, get_registry


class BackendError(Exception):
    """Base of everything a storage backend can raise."""


class ObjectMissingError(BackendError, KeyError):
    """The named object does not exist (a 404)."""

    def __str__(self) -> str:  # KeyError quotes its arg; keep it readable
        return BackendError.__str__(self)


class TransientBackendError(BackendError):
    """A retryable, 5xx-style failure (internal error, connection reset)."""


class ThrottledError(TransientBackendError):
    """The backend shed the request (503 SlowDown); retry after backoff."""


class RetryExhaustedError(BackendError, OSError):
    """Transient failures outlasted the retry budget; the backend is down.

    Also an ``OSError``: failover readers and the CLI already treat
    "the medium is unreachable" as an I/O failure, so a dead cold tier
    falls through to replicas (and exits 1) without new catch sites.
    """


@dataclass(frozen=True)
class ObjectStat:
    """What ``stat`` knows without fetching bytes."""

    key: str
    size: int


class BackendTelemetry:
    """``storage.*`` instruments shared by every backend implementation.

    One instance per backend object, labelled with the backend's name so
    a tiered repository's hot and cold traffic stay distinguishable in
    the same registry.
    """

    def __init__(self, backend: str, registry: Optional[MetricsRegistry] = None) -> None:
        registry = registry if registry is not None else get_registry()
        self.requests = registry.counter(
            "storage.requests", "backend requests issued, by operation"
        )
        self.bytes_fetched = registry.counter(
            "storage.bytes_fetched", "object bytes fetched from a backend"
        ).labels(backend=backend)
        self.bytes_stored = registry.counter(
            "storage.bytes_stored", "object bytes written to a backend"
        ).labels(backend=backend)
        self.batched_gets = registry.counter(
            "storage.batched_gets",
            "multi-range GET requests (one request, many ranges)",
        ).labels(backend=backend)
        self.single_gets = registry.counter(
            "storage.single_gets", "single-range or whole-object GET requests"
        ).labels(backend=backend)
        self.retries = registry.counter(
            "storage.retries", "transient backend failures retried"
        ).labels(backend=backend)
        self.throttled = registry.counter(
            "storage.throttled", "requests the backend shed with a throttle"
        ).labels(backend=backend)
        self.errors = registry.counter(
            "storage.errors", "backend requests that failed permanently"
        ).labels(backend=backend)
        self._backend = backend

    def request(self, op: str) -> None:
        self.requests.labels(backend=self._backend, op=op).inc()


class StorageBackend:
    """Abstract key/value object store (see module docstring).

    Subclasses implement the six verbs; ``get_ranges`` has a default
    loop-of-``get_range`` implementation so a minimal backend works out
    of the box — object stores override it to answer all ranges in one
    request (that override is what makes adjacent-GET batching pay).
    """

    #: Short name used in telemetry labels and reports.
    name = "backend"

    def put(self, key: str, data: bytes) -> None:
        raise NotImplementedError

    def get(self, key: str) -> bytes:
        raise NotImplementedError

    def get_range(self, key: str, offset: int, length: int) -> bytes:
        raise NotImplementedError

    def get_ranges(
        self, key: str, ranges: Sequence[Tuple[int, int]]
    ) -> List[bytes]:
        """Fetch several ``(offset, length)`` ranges of one object.

        Default: one ``get_range`` request per range.  Batched backends
        override this to answer every range in a single request.
        """
        return [self.get_range(key, off, length) for off, length in ranges]

    def delete(self, key: str) -> None:
        raise NotImplementedError

    def list_keys(self, prefix: str = "") -> List[str]:
        raise NotImplementedError

    def stat(self, key: str) -> ObjectStat:
        raise NotImplementedError

    def exists(self, key: str) -> bool:
        try:
            self.stat(key)
            return True
        except ObjectMissingError:
            return False
