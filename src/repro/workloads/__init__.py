"""Workload models: the paper's synthetic fingerprint streams (Section 6.2),
the HUSt data-center 31-day model (Section 6.1), and an on-disk file-tree
generator for the file-mode examples."""

from repro.workloads.synthetic import SyntheticUniverse, SyntheticConfig
from repro.workloads.hust import HustWorkload, HustConfig
from repro.workloads.filetree import FileTreeGenerator, mutate_tree

__all__ = [
    "SyntheticUniverse",
    "SyntheticConfig",
    "HustWorkload",
    "HustConfig",
    "FileTreeGenerator",
    "mutate_tree",
]
