"""A generative model of the HUSt data-center workload (Section 6.1).

The paper backs up 8 HUSt storage nodes, one version per day for 31 days,
where each node follows a daily-incremental / weekly-full policy.  Daily
logical volume averages ~583 GB (ranging under 150 GB to over 800 GB);
the month ends at 17.09 TB logical vs 1.82 TB physical (9.39:1), with the
preliminary filter alone achieving a stable ~3.6:1 (dedup-1 cumulative) and
dedup-2 squeezing the remaining ~2.6:1.

The model generates per-client daily versions with four composition bands,
calibrated to land on those ratios:

* ``internal``   — fingerprints repeated within the day's version
                   (caught by the filter and by DDFS alike);
* ``adjacent``   — sections shared with the same client's previous version
                   (caught by the filter, since it is seeded with the
                   previous run of the job chain);
* ``old``        — sections from older versions or other clients
                   (invisible to the filter; caught by SIL / DDFS);
* ``new``        — fresh fingerprints.

Weekly-full days multiply a client's volume; incremental days jitter it,
which produces the paper's large day-to-day swings.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.core.fingerprint import Fingerprint, SyntheticFingerprints
from repro.core.tpds import StreamChunk
from repro.workloads.synthetic import Section


@dataclass(frozen=True)
class HustConfig:
    """Scaled HUSt model parameters.

    ``mean_daily_chunks`` is the fleet-wide average logical chunks per day;
    the paper's 583 GB of 8 KB chunks is ~76.5 M — scaled runs use far less
    while every ratio stays put.
    """

    n_clients: int = 8
    days: int = 31
    mean_daily_chunks: int = 16_000
    chunk_size: int = 8 * 1024
    #: Composition of a non-first version (fractions of the day's volume),
    #: tuned so the three paper ratios cohere: dedup-1 catches
    #: internal+adjacent = 0.72 (3.6:1), dedup-2 squeezes old vs new
    #: (~2.6:1), and overall new data is ~10.7 % (9.39:1).
    internal_fraction: float = 0.145
    adjacent_fraction: float = 0.59
    old_fraction: float = 0.19
    #: Weekly-full days multiply the client's incremental volume.
    full_backup_multiplier: float = 3.0
    #: Lognormal-ish jitter applied to daily volumes.
    volume_jitter: float = 0.35
    section_chunks: int = 96
    seed: int = 7

    def __post_init__(self) -> None:
        total = self.internal_fraction + self.adjacent_fraction + self.old_fraction
        if not 0 < total < 1:
            raise ValueError("duplicate fractions must sum inside (0, 1)")
        if self.n_clients < 1 or self.days < 1 or self.mean_daily_chunks < self.n_clients:
            raise ValueError("implausible workload dimensions")

    @property
    def new_fraction(self) -> float:
        return 1.0 - self.internal_fraction - self.adjacent_fraction - self.old_fraction


class HustWorkload:
    """Day-by-day backup streams for the 8-client HUSt experiment."""

    def __init__(self, config: Optional[HustConfig] = None) -> None:
        self.config = config if config is not None else HustConfig()
        cfg = self.config
        subspace_bits = 64 - max(1, (cfg.n_clients - 1).bit_length() + 1)
        self._gens = [
            SyntheticFingerprints(i, subspace_bits=subspace_bits) for i in range(cfg.n_clients)
        ]
        self._rng = random.Random(cfg.seed)
        self._latest: List[List[Section]] = [[] for _ in range(cfg.n_clients)]
        self._history: List[List[Section]] = [[] for _ in range(cfg.n_clients)]

    # -- volume model -------------------------------------------------------------
    def _day_chunks(self, client: int, day: int) -> int:
        cfg = self.config
        base = cfg.mean_daily_chunks / cfg.n_clients
        # Weekly fulls are staggered so one client's full lands each day.
        is_full = (day % 7) == (client % 7)
        if is_full:
            base *= cfg.full_backup_multiplier
        else:
            base *= max(0.25, 1.0 - cfg.full_backup_multiplier / 7.0)
        jitter = self._rng.lognormvariate(0.0, cfg.volume_jitter)
        return max(16, int(base * jitter))

    # -- section helpers ------------------------------------------------------------
    def _fresh(self, client: int, length: int) -> Section:
        gen = self._gens[client]
        start = gen.generated
        gen.fresh(length)
        return Section(client, start, length)

    def _sectionize_fresh(self, client: int, n: int) -> List[Section]:
        out = []
        while n > 0:
            take = min(n, self.config.section_chunks)
            out.append(self._fresh(client, take))
            n -= take
        return out

    def _sample_sections(self, pool: List[Section], n: int) -> List[Section]:
        """Sample ~n chunks of contiguous sections from a pool."""
        rng = self._rng
        out: List[Section] = []
        total = 0
        while total < n and pool:
            src = rng.choice(pool)
            take = min(src.length, n - total, self.config.section_chunks)
            offset = rng.randrange(0, src.length - take + 1)
            out.append(Section(src.subspace, src.start + offset, take))
            total += take
        return out

    # -- the daily stream -----------------------------------------------------------------
    def day_streams(self, day: int) -> List[Tuple[int, List[Section]]]:
        """All clients' backup versions for one day (0-based day index)."""
        if not 0 <= day < self.config.days:
            raise ValueError(f"day {day} outside the {self.config.days}-day window")
        cfg = self.config
        out: List[Tuple[int, List[Section]]] = []
        for client in range(cfg.n_clients):
            n = self._day_chunks(client, day)
            if day == 0:
                sections = self._sectionize_fresh(client, n)
            else:
                n_internal = round(n * cfg.internal_fraction)
                n_adjacent = round(n * cfg.adjacent_fraction)
                n_old = round(n * cfg.old_fraction)
                n_new = max(1, n - n_internal - n_adjacent - n_old)
                sections = []
                sections.extend(self._sample_sections(self._latest[client], n_adjacent))
                old_pool = [
                    s
                    for c in range(cfg.n_clients)
                    for s in self._history[c]
                ]
                sections.extend(self._sample_sections(old_pool, n_old))
                fresh = self._sectionize_fresh(client, n_new)
                sections.extend(fresh)
                # Internal duplication: re-emit sections already in today's
                # version (the filter catches these on their second pass).
                sections.extend(self._sample_sections(sections, n_internal))
                self._rng.shuffle(sections)
            self._latest[client] = sections
            self._history[client].extend(s for s in sections if s.subspace == client)
            out.append((client, sections))
        return out

    # -- materialisation ---------------------------------------------------------------------
    def fingerprints_of(self, section: Section) -> List[Fingerprint]:
        return self._gens[section.subspace].range(section.start, section.length)

    def stream_of(self, sections: List[Section]) -> Iterator[StreamChunk]:
        """Materialise a version as (fingerprint, size) backup elements."""
        for section in sections:
            for fp in self.fingerprints_of(section):
                yield fp, self.config.chunk_size

    def section_chunk_count(self, sections: List[Section]) -> int:
        return sum(s.length for s in sections)
