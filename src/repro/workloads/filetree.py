"""On-disk file-tree generation and mutation for the file-mode examples.

Creates realistic directory trees of compressible-ish binary files and
applies version-to-version edits (insert bytes at the front, append, modify
a region, add and delete files) — the edit patterns CDC chunking is designed
to survive and fixed-size blocking is not.
"""

from __future__ import annotations

import random
from pathlib import Path
from typing import Dict, List, Union

PathLike = Union[str, Path]


class FileTreeGenerator:
    """Deterministic random file trees under a root directory."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def _file_bytes(self, size: int) -> bytes:
        # Blocks of repeated randomness: compressible structure with enough
        # entropy that CDC anchors land naturally.
        rng = self._rng
        out = bytearray()
        while len(out) < size:
            block = rng.randbytes(rng.randint(256, 4096))
            out.extend(block * rng.randint(1, 3))
        return bytes(out[:size])

    def generate(
        self,
        root: PathLike,
        n_files: int = 12,
        n_dirs: int = 3,
        min_size: int = 16 * 1024,
        max_size: int = 256 * 1024,
    ) -> List[Path]:
        """Create a tree of ``n_files`` files spread over ``n_dirs`` dirs."""
        if n_files < 1 or n_dirs < 1:
            raise ValueError("need at least one file and one directory")
        root = Path(root)
        dirs = [root] + [root / f"dir{i:02d}" for i in range(1, n_dirs)]
        for d in dirs:
            d.mkdir(parents=True, exist_ok=True)
        files = []
        for i in range(n_files):
            directory = self._rng.choice(dirs)
            path = directory / f"file{i:03d}.bin"
            size = self._rng.randint(min_size, max_size)
            path.write_bytes(self._file_bytes(size))
            files.append(path)
        return files


def mutate_tree(
    root: PathLike,
    seed: int = 1,
    edit_fraction: float = 0.4,
    new_files: int = 2,
    delete_files: int = 1,
) -> Dict[str, int]:
    """Apply one backup cycle's worth of edits to a tree; returns counts.

    Edits per touched file (chosen at random): prepend a few bytes (the
    fixed-size-blocking killer), append, or overwrite an interior region.
    """
    rng = random.Random(seed)
    root = Path(root)
    files = sorted(p for p in root.rglob("*") if p.is_file())
    if not files:
        raise ValueError(f"no files under {root}")
    stats = {"edited": 0, "created": 0, "deleted": 0}

    n_edit = max(1, int(len(files) * edit_fraction))
    for path in rng.sample(files, min(n_edit, len(files))):
        data = bytearray(path.read_bytes())
        kind = rng.choice(["prepend", "append", "overwrite"])
        blob = rng.randbytes(rng.randint(64, 2048))
        if kind == "prepend":
            data[:0] = blob
        elif kind == "append":
            data.extend(blob)
        else:
            if len(data) > len(blob):
                at = rng.randrange(0, len(data) - len(blob))
                data[at : at + len(blob)] = blob
            else:
                data.extend(blob)
        path.write_bytes(bytes(data))
        stats["edited"] += 1

    gen = FileTreeGenerator(seed=seed + 1000)
    for i in range(new_files):
        path = root / f"new{seed:02d}_{i:02d}.bin"
        path.write_bytes(gen._file_bytes(rng.randint(8 * 1024, 64 * 1024)))
        stats["created"] += 1

    deletable = [p for p in files if p.exists()]
    for path in rng.sample(deletable, min(delete_files, len(deletable))):
        path.unlink()
        stats["deleted"] += 1
    return stats
