"""The paper's synthetic fingerprint workload (Section 6.2).

The 64-bit counter value space is divided into non-intersecting contiguous
subspaces, one per backup stream; SHA-1 over counter values yields random,
reproducible fingerprints.  Each stream is an ordered series of versions;
each successor version is derived from its predecessor by

1. *reordering and deleting* some existing fingerprint sections,
2. *adding new fingerprints* from a contiguous section of the stream's own
   subspace, and
3. *adding duplicate fingerprints* from small contiguous sections of the
   value space used by previous versions of this or other subspaces — the
   cross-stream duplication that spreads chunks over repository nodes.

The paper's headline configuration: ~90 % duplicate fingerprints per
version, of which ~30 points are cross-stream, for an average version
compression ratio of 10.  Duplicate *locality* is preserved by drawing
duplicates as contiguous sections, which is what SISL and the LPC exploit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

from repro.core.fingerprint import Fingerprint, SyntheticFingerprints
from repro.core.tpds import StreamChunk


@dataclass(frozen=True)
class SyntheticConfig:
    """Knobs of the Section 6.2 generator.

    ``dup_fraction`` counts all duplicates (own + cross); the paper uses
    0.9 with ``cross_fraction`` 0.3 of the *total* version.
    """

    n_streams: int = 64
    chunk_size: int = 8 * 1024
    dup_fraction: float = 0.90
    cross_fraction: float = 0.30
    #: Mean length (in chunks) of a contiguous duplicate section.
    section_chunks: int = 128
    #: Fraction of inherited sections dropped per version ("deleting").
    delete_fraction: float = 0.10
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.cross_fraction <= self.dup_fraction <= 1:
            raise ValueError("need 0 <= cross_fraction <= dup_fraction <= 1")
        if self.n_streams < 1 or self.chunk_size < 1 or self.section_chunks < 1:
            raise ValueError("sizes must be positive")


@dataclass(frozen=True)
class Section:
    """A contiguous counter-space section: (subspace, start offset, length)."""

    subspace: int
    start: int
    length: int


class SyntheticUniverse:
    """All streams of one synthetic experiment, sharing one value space."""

    def __init__(self, config: Optional[SyntheticConfig] = None) -> None:
        self.config = config if config is not None else SyntheticConfig()
        subspace_bits = 58 if self.config.n_streams <= 64 else 64 - (self.config.n_streams - 1).bit_length()
        self._gens = [
            SyntheticFingerprints(i, subspace_bits=subspace_bits)
            for i in range(self.config.n_streams)
        ]
        self._rng = random.Random(self.config.seed)
        #: Per stream: sections used by its latest version (adjacency pool).
        self._latest_sections: List[List[Section]] = [[] for _ in range(self.config.n_streams)]
        #: Per stream: all sections ever used (history pool for cross dups).
        self._history: List[List[Section]] = [[] for _ in range(self.config.n_streams)]
        self.versions_generated = [0] * self.config.n_streams

    # -- fingerprint materialisation -----------------------------------------------
    def fingerprints_of(self, section: Section) -> List[Fingerprint]:
        return self._gens[section.subspace].range(section.start, section.length)

    def _fresh_section(self, stream_id: int, length: int) -> Section:
        gen = self._gens[stream_id]
        start = gen.generated
        gen.fresh(length)
        return Section(stream_id, start, length)

    # -- version construction ----------------------------------------------------------
    def next_version(self, stream_id: int, n_chunks: int) -> List[Section]:
        """Generate the next version of a stream as a list of sections.

        The first version of a stream is entirely new fingerprints; later
        versions follow the paper's modify/add-new/add-duplicate recipe.
        Use :meth:`version_stream` to materialise it as backup chunks.
        """
        if not 0 <= stream_id < self.config.n_streams:
            raise ValueError(f"no stream {stream_id}")
        if n_chunks < 1:
            raise ValueError("a version needs at least one chunk")
        cfg = self.config
        rng = self._rng

        if self.versions_generated[stream_id] == 0:
            sections = self._sectionize_fresh(stream_id, n_chunks)
        else:
            n_new = max(1, round(n_chunks * (1 - cfg.dup_fraction)))
            n_cross = round(n_chunks * cfg.cross_fraction)
            n_own = max(0, n_chunks - n_new - n_cross)
            sections = []
            sections.extend(self._inherit_own(stream_id, n_own))
            sections.extend(self._cross_sections(stream_id, n_cross))
            sections.extend(self._sectionize_fresh(stream_id, n_new))
            rng.shuffle(sections)  # "reordering ... existing fingerprints"

        self._latest_sections[stream_id] = sections
        self._history[stream_id].extend(s for s in sections if s.subspace == stream_id)
        self.versions_generated[stream_id] += 1
        return sections

    def _sectionize_fresh(self, stream_id: int, n_chunks: int) -> List[Section]:
        sections = []
        remaining = n_chunks
        while remaining > 0:
            length = min(remaining, self.config.section_chunks)
            sections.append(self._fresh_section(stream_id, length))
            remaining -= length
        return sections

    def _inherit_own(self, stream_id: int, n_chunks: int) -> List[Section]:
        """Duplicate sections from this stream's previous version, with some
        deleted (the version-to-version modification)."""
        pool = list(self._latest_sections[stream_id])
        rng = self._rng
        kept: List[Section] = []
        total = 0
        rng.shuffle(pool)
        for section in pool:
            if rng.random() < self.config.delete_fraction:
                continue
            take = min(section.length, n_chunks - total)
            if take <= 0:
                break
            kept.append(Section(section.subspace, section.start, take))
            total += take
        # Top up from history if deletion left us short.
        while total < n_chunks and self._history[stream_id]:
            section = rng.choice(self._history[stream_id])
            take = min(section.length, n_chunks - total)
            kept.append(Section(section.subspace, section.start, take))
            total += take
        return kept

    def _cross_sections(self, stream_id: int, n_chunks: int) -> List[Section]:
        """Small contiguous sections from other subspaces' used ranges."""
        rng = self._rng
        donors = [
            i
            for i in range(self.config.n_streams)
            if i != stream_id and self._history[i]
        ]
        sections: List[Section] = []
        total = 0
        while total < n_chunks and donors:
            donor = rng.choice(donors)
            src = rng.choice(self._history[donor])
            take = min(src.length, n_chunks - total, self.config.section_chunks)
            offset = rng.randrange(0, src.length - take + 1)
            sections.append(Section(src.subspace, src.start + offset, take))
            total += take
        if total < n_chunks:
            # No donors yet (first round): substitute own fresh data.
            sections.extend(self._sectionize_fresh(stream_id, n_chunks - total))
        return sections

    # -- materialisation ----------------------------------------------------------------
    def version_stream(self, sections: Sequence[Section]) -> Iterator[StreamChunk]:
        """Materialise a version as (fingerprint, chunk size) backup elements."""
        for section in sections:
            for fp in self.fingerprints_of(section):
                yield fp, self.config.chunk_size

    def version_chunks(self, sections: Sequence[Section]) -> int:
        return sum(s.length for s in sections)
