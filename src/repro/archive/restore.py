"""Point-in-time restore from delta chains (DESIGN.md §15.5).

``repro restore --as-of <run>`` reconstructs a retained run byte-
identically from its job's chain: fold the files maps of every chain
segment up to the as-of point into the run's full recipe, collect the
chunk payloads those segments carry (the chain-coverage invariant
guarantees every referenced fingerprint resolves), and materialize the
files through the ordinary restore engine.  Works against a local
:class:`~repro.archive.store.ArchiveStore` or over the wire
(``ARCHIVE_STATUS`` to locate the chain, ``DELTA_FETCH`` per segment) —
the primary vault is not involved at all, which is the DR story.

Resolution rules: an as-of point is matched by ``(origin, job, run)``;
unqualified lookups sweep every chain, and a run id retained by more
than one chain raises instead of guessing — run ids are only unique per
origin vault.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.archive.delta import fold, index_entry, unpack_delta
from repro.client.backup_client import BackupEngine
from repro.net import messages as m
from repro.telemetry.registry import MetricsRegistry, get_registry


class _MapReader:
    """``ChunkStore.read_chunk`` over an in-memory fingerprint map."""

    def __init__(self, chunks: Dict[bytes, bytes]) -> None:
        self._chunks = chunks

    def read_chunk(self, fp: bytes) -> bytes:
        try:
            return self._chunks[fp]
        except KeyError:
            raise KeyError(
                f"fingerprint {fp.hex()[:12]} not covered by the delta chain"
            ) from None


def resolve_point(
    origins: dict,
    as_of: int,
    job: Optional[str] = None,
    origin: Optional[str] = None,
) -> Tuple[str, str]:
    """Find the unique ``(origin, job)`` chain retaining run ``as_of``.

    ``origins`` is the ``ARCHIVE_STATUS`` inventory shape
    (``{origin: {job: {"points": [...]}}}``).  Raises ``KeyError`` when no
    chain retains the point or more than one does (qualify with ``--job``).
    """
    candidates: List[Tuple[str, str]] = []
    for o, jobs in origins.items():
        if origin is not None and o != origin:
            continue
        for j, doc in jobs.items():
            if job is not None and j != job:
                continue
            if as_of in doc.get("points", []):
                candidates.append((o, j))
    if not candidates:
        scope = f" for job {job!r}" if job else ""
        raise KeyError(f"no archived chain retains run {as_of}{scope}")
    if len(candidates) > 1:
        raise KeyError(
            f"run {as_of} is retained by chains {sorted(candidates)}; "
            "qualify the lookup with a job"
        )
    return candidates[0]


def _materialize(
    recipe: dict,
    chunks: Dict[bytes, bytes],
    dest,
    strip_prefix="/",
    registry: Optional[MetricsRegistry] = None,
) -> List[Path]:
    registry = registry if registry is not None else get_registry()
    entries = [index_entry(recipe[path]) for path in sorted(recipe)]
    engine = BackupEngine("archive-restore", registry=registry)
    paths = engine.restore_run(entries, _MapReader(chunks), dest, strip_prefix)
    registry.counter(
        "archive.restores", "point-in-time restores served from delta chains"
    ).labels().inc()
    return paths


def restore_local(
    store,
    as_of: int,
    dest,
    strip_prefix="/",
    job: Optional[str] = None,
    origin: Optional[str] = None,
    registry: Optional[MetricsRegistry] = None,
) -> List[Path]:
    """Restore ``as_of`` from a local :class:`ArchiveStore`."""
    inventory = {
        o: {j: {"points": store.points(o, j)} for j in store.jobs(o)}
        for o in store.origins()
    }
    o, j = resolve_point(inventory, as_of, job=job, origin=origin)
    recipe, chunks = store.restore_point(o, j, as_of)
    return _materialize(recipe, chunks, dest, strip_prefix, registry=registry)


def restore_remote(
    net,
    as_of: int,
    dest,
    strip_prefix="/",
    job: Optional[str] = None,
    origin: Optional[str] = None,
    registry: Optional[MetricsRegistry] = None,
) -> List[Path]:
    """Restore ``as_of`` from a remote archive over one ``NetClient``.

    One ``ARCHIVE_STATUS`` locates the chain; one ``DELTA_FETCH`` per
    chain segment up to the as-of point pulls the deltas; folding and
    materialization happen client-side — the origin vault can be gone.
    """
    status = net.call_json(m.ARCHIVE_STATUS, {})
    o, j = resolve_point(
        status.get("origins", {}), as_of, job=job, origin=origin
    )
    recipe: dict = {}
    chunks: Dict[bytes, bytes] = {}
    for seg in status["origins"][o][j]["segments"]:
        if seg["run"] > as_of:
            break
        blob = net.call(
            m.DELTA_FETCH,
            m.encode_json(
                {"origin": o, "job": j, "base": seg["base"], "run": seg["run"]}
            ),
        )
        delta = unpack_delta(blob, artifact=f"{o}/{j}/{seg['base']}-{seg['run']}")
        recipe = fold(recipe, delta)
        chunks.update(delta.chunks)
    return _materialize(recipe, chunks, dest, strip_prefix, registry=registry)
