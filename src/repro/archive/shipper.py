"""The asynchronous archive shipper: per-run deltas → archive peers.

One :class:`ArchiveShipper` rides beside a
:class:`~repro.system.vault.DebarVault` (the ``repro serve --archive-to``
wiring), exactly like the container :class:`~repro.replication.replicator.
Replicator` it is modeled on.  After every committed run — strictly
*after* dedup-2, so the inline backup path never waits on the archive —
``notify_run`` diffs the catalog against the per-peer ack state and
enqueues the runs each archive is still owed.  Everything heavy happens
in the worker threads:

* one worker thread and one :class:`~repro.net.client.NetClient` per
  peer, draining a per-peer FIFO of ``(job, run_id)`` tasks **in run
  order** (deltas, unlike containers, are order-dependent: each one
  applies against the archive's current tip);
* the delta itself is cut lazily at ship time (catalog recipe diff +
  chunk-store reads), so the inline cost of shipping is enqueueing a
  couple of tuples — ~0%;
* a shared in-flight window (semaphore) and a bounded queue with
  backpressure, as in the replicator;
* pushes are idempotent end to end: the wire layer retries under the
  server's response cache, and the archive treats a re-push of an
  applied run (``run_id <= tip``) as a no-op ack — which is also what
  makes a shipper restart after a crash-before-ack safe;
* acked run ids persist per peer and job in ``<vault>/archive.json``; a
  lost state file merely causes harmless re-pushes.

Telemetry: ``archive.deltas_cut``, ``archive.deltas_shipped``,
``archive.bytes_shipped``, ``archive.push_errors``,
``archive.queue_depth``, ``archive.lag`` (DESIGN.md §15.4).
"""

from __future__ import annotations

import json
import threading
from collections import deque
from pathlib import Path
from typing import Deque, Dict, Optional, Set, Tuple

from repro.archive.delta import cut_delta, pack_delta
from repro.net import messages as m
from repro.net.client import NetClient, RemoteError, RetryPolicy
from repro.net.framing import ProtocolError
from repro.telemetry.registry import MetricsRegistry, get_registry

#: State file name inside the vault root.
STATE_FILE = "archive.json"

#: Default bound on queued (not yet in-flight) shipment tasks.
MAX_PENDING = 4096

#: Default bound on concurrent in-flight pushes across all peers.
WINDOW = 2

#: Seconds between retries while a peer stays unreachable (capped backoff).
_BACKOFF_BASE = 0.2
_BACKOFF_MAX = 5.0

#: One shipment task: (job, run_id).
Task = Tuple[str, int]


class _PeerChannel:
    """One archive peer's shipment lane: a FIFO of (job, run) tasks."""

    def __init__(self, name: str, host: str, port: int) -> None:
        self.name = name
        self.host = host
        self.port = port
        self.queue: Deque[Task] = deque()
        self.queued: Set[Task] = set()
        self.in_flight = 0
        self.errors = 0
        self.thread: Optional[threading.Thread] = None


class ArchiveShipper:
    """Ships a vault's per-run deltas to its archive peers, in run order."""

    def __init__(
        self,
        vault,
        node_name: str,
        peers: Dict[str, Tuple[str, int]],
        registry: Optional[MetricsRegistry] = None,
        retry: Optional[RetryPolicy] = None,
        window: int = WINDOW,
        max_pending: int = MAX_PENDING,
    ) -> None:
        if node_name in peers:
            raise ValueError(f"node {node_name!r} cannot be its own archive")
        if not peers:
            raise ValueError("an archive shipper needs at least one peer")
        self.vault = vault
        self.node_name = node_name
        self.retry = retry if retry is not None else RetryPolicy()
        self.max_pending = max_pending
        self._window = threading.Semaphore(max(1, window))
        self._cond = threading.Condition()
        self._paused = False
        self._stopping = False
        self._channels: Dict[str, _PeerChannel] = {
            name: _PeerChannel(name, host, port)
            for name, (host, port) in peers.items()
        }
        self._state_path = Path(vault.root) / STATE_FILE
        #: peer -> job -> last run id the archive acked.
        self._acked: Dict[str, Dict[str, int]] = {name: {} for name in peers}
        self._load_state()
        #: Crash-point announcer (repro.audit.faults); None in production.
        self.fault_hook = None
        registry = registry if registry is not None else get_registry()
        self.registry = registry
        self._t_depth = registry.gauge(
            "archive.queue_depth", "delta shipments queued, not yet in flight"
        ).labels()
        self._t_lag = registry.gauge(
            "archive.lag", "delta shipments owed to archives (queued + in flight)"
        ).labels()
        self._t_cut = registry.counter(
            "archive.deltas_cut", "per-run delta objects cut from the catalog"
        ).labels()
        self._t_shipped = registry.counter(
            "archive.deltas_shipped", "delta objects acked by an archive peer"
        )
        self._t_bytes = registry.counter(
            "archive.bytes_shipped", "delta bytes acked by an archive peer"
        )
        self._t_errors = registry.counter(
            "archive.push_errors", "failed delta pushes (retried with backoff)"
        )
        for channel in self._channels.values():
            channel.thread = threading.Thread(
                target=self._worker,
                args=(channel,),
                name=f"archive-{channel.name}",
                daemon=True,
            )
            channel.thread.start()

    # -- persistent state --------------------------------------------------------
    def _load_state(self) -> None:
        if not self._state_path.exists():
            return
        try:
            doc = json.loads(self._state_path.read_text())
        except (ValueError, OSError):
            return  # harmless: everything re-pushes idempotently
        for name, jobs in doc.get("acked", {}).items():
            if name in self._acked and isinstance(jobs, dict):
                for job, run_id in jobs.items():
                    self._acked[name][str(job)] = int(run_id)

    def _save_state(self) -> None:
        doc = {
            "node": self.node_name,
            "peers": {
                name: f"{c.host}:{c.port}" for name, c in self._channels.items()
            },
            "acked": {name: dict(jobs) for name, jobs in self._acked.items()},
        }
        tmp = self._state_path.with_suffix(".tmp")
        tmp.write_text(json.dumps(doc, indent=1))
        tmp.replace(self._state_path)

    # -- enqueueing ---------------------------------------------------------------
    def _pending_total(self) -> int:
        return sum(len(c.queue) for c in self._channels.values())

    def _in_flight_total(self) -> int:
        return sum(c.in_flight for c in self._channels.values())

    def _publish_gauges(self) -> None:
        depth = self._pending_total()
        self._t_depth.set(depth)
        self._t_lag.set(depth + self._in_flight_total())

    def sync(self) -> int:
        """Diff the catalog against acked state; enqueue what's owed.

        Returns the number of delta shipments enqueued.  Run order per
        job is preserved (the FIFO contract the archive enforces).
        Blocks only when the queue is at ``max_pending`` (backpressure),
        never on the network and never on chunk I/O.
        """
        chains: Dict[str, list] = {}
        for run in self.vault.runs():
            chains.setdefault(run.job, []).append(run.run_id)
        enqueued = 0
        for job, run_ids in chains.items():
            run_ids.sort()
            for channel in self._channels.values():
                floor = self._acked[channel.name].get(job, 0)
                for run_id in run_ids:
                    if run_id <= floor:
                        continue
                    task = (job, run_id)
                    with self._cond:
                        if task in channel.queued:
                            continue
                        while (
                            self._pending_total() >= self.max_pending
                            and not self._stopping
                        ):
                            self._cond.wait(0.05)
                        if self._stopping:
                            return enqueued
                        channel.queue.append(task)
                        channel.queued.add(task)
                        enqueued += 1
                        self._publish_gauges()
                        self._cond.notify_all()
        return enqueued

    def notify_run(self, run=None) -> None:
        """Hook for :meth:`DebarVault.backup_stream`: a run just committed
        (dedup-2 complete, containers sealed, catalog written)."""
        self.sync()

    # -- flow control -------------------------------------------------------------
    def pause(self) -> None:
        """Stall the queue (tests and benchmarks): nothing ships until
        :meth:`resume`; enqueueing and lag accounting continue."""
        with self._cond:
            self._paused = True

    def resume(self) -> None:
        with self._cond:
            self._paused = False
            self._cond.notify_all()

    def lag(self) -> int:
        with self._cond:
            return self._pending_total() + self._in_flight_total()

    def drain(self, timeout: Optional[float] = 30.0) -> bool:
        """Block until every queued shipment is acked (or timeout)."""
        import time as _time

        deadline = None if timeout is None else _time.monotonic() + timeout
        with self._cond:
            while True:
                if self._pending_total() == 0 and self._in_flight_total() == 0:
                    return True
                if self._stopping:
                    return False
                remaining = (
                    None if deadline is None else deadline - _time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return False
                self._cond.wait(0.05 if remaining is None else min(0.05, remaining))

    def close(self, drain: bool = True, timeout: Optional[float] = 30.0) -> bool:
        """Stop the workers; with ``drain`` first wait for the queue."""
        drained = self.drain(timeout) if drain else False
        with self._cond:
            self._stopping = True
            self._cond.notify_all()
        for channel in self._channels.values():
            if channel.thread is not None:
                channel.thread.join(timeout=5.0)
        return drained

    # -- status -------------------------------------------------------------------
    def status(self) -> dict:
        """JSON-able outbound state (the ``repro archive-status`` body)."""
        with self._cond:
            return {
                "node": self.node_name,
                "peers": {
                    name: {
                        "address": f"{c.host}:{c.port}",
                        "queued": len(c.queue),
                        "in_flight": c.in_flight,
                        "acked": dict(self._acked[name]),
                        "errors": c.errors,
                    }
                    for name, c in self._channels.items()
                },
                "lag": self._pending_total() + self._in_flight_total(),
            }

    # -- the worker ---------------------------------------------------------------
    def _next_task(self, channel: _PeerChannel) -> Optional[Task]:
        with self._cond:
            while True:
                if self._stopping:
                    return None
                if not self._paused and channel.queue:
                    task = channel.queue.popleft()
                    channel.queued.discard(task)
                    channel.in_flight += 1
                    self._publish_gauges()
                    return task
                self._cond.wait(0.1)

    def _task_done(self, channel: _PeerChannel) -> None:
        with self._cond:
            channel.in_flight -= 1
            self._publish_gauges()
            self._cond.notify_all()

    def _requeue(self, channel: _PeerChannel, task: Task) -> None:
        with self._cond:
            if task not in channel.queued:
                # Head of the line, not the tail: per-job run order is the
                # archive's FIFO contract.
                channel.queue.appendleft(task)
                channel.queued.add(task)
            channel.in_flight -= 1
            channel.errors += 1
            self._publish_gauges()
            self._cond.notify_all()

    def _worker(self, channel: _PeerChannel) -> None:
        client = NetClient(
            channel.host,
            channel.port,
            client_name=f"archive:{self.node_name}",
            retry=self.retry,
            registry=self.registry,
        )
        backoff = _BACKOFF_BASE
        try:
            while True:
                task = self._next_task(channel)
                if task is None:
                    return
                self._window.acquire()
                try:
                    self._push_delta(client, channel, task)
                    backoff = _BACKOFF_BASE
                except RemoteError:
                    # The archive executed and refused (corrupt blob,
                    # out-of-order chain): retrying identical bytes cannot
                    # succeed; the next sync() re-evaluates what is owed.
                    self._t_errors.labels(peer=channel.name).inc()
                    with self._cond:
                        channel.errors += 1
                        channel.in_flight -= 1
                        self._publish_gauges()
                        self._cond.notify_all()
                    continue
                except (ProtocolError, OSError):
                    # Transport failure after the client's own retries:
                    # the archive is down.  Requeue (head) and back off.
                    self._t_errors.labels(peer=channel.name).inc()
                    self._requeue(channel, task)
                    self._sleep_backoff(backoff)
                    backoff = min(backoff * 2, _BACKOFF_MAX)
                    continue
                finally:
                    self._window.release()
                self._task_done(channel)
        finally:
            client.close()

    def _sleep_backoff(self, seconds: float) -> None:
        with self._cond:
            if not self._stopping:
                self._cond.wait(seconds)

    def _push_delta(
        self, client: NetClient, channel: _PeerChannel, task: Task
    ) -> None:
        from repro.audit.faults import ARCHIVE_SHIP_PREACK

        job, run_id = task
        floor = self._acked[channel.name].get(job, 0)
        if run_id <= floor:
            return  # a duplicate task raced an already-advanced ack
        run = None
        for candidate in self.vault.runs(job):
            if candidate.run_id == run_id:
                run = candidate
                break
        if run is None:
            # Committed then forgotten before shipping: nothing owed.  The
            # ack floor must NOT advance past a run the archive never saw —
            # the next surviving run diffs against the still-acked floor,
            # so the chain stays contiguous.
            return
        # The base is this peer's acked tip — the archive's FIFO contract.
        # cut_delta falls back to a full delta when that recipe is gone.
        delta = cut_delta(
            self.vault, run, base_run_id=floor, origin=self.node_name
        )
        blob = pack_delta(delta)
        self._t_cut.inc()
        envelope = {
            "origin": self.node_name,
            "job": job,
            "run_id": run_id,
            "base_run_id": delta.base_run_id,
            "full": delta.full,
            "bytes": len(blob),
        }
        client.call(m.DELTA_PUSH, m.encode_container_image(envelope, blob))
        if self.fault_hook is not None:
            self.fault_hook(ARCHIVE_SHIP_PREACK)
        self._t_shipped.labels(peer=channel.name).inc()
        self._t_bytes.labels(peer=channel.name).inc(len(blob))
        with self._cond:
            self._acked[channel.name][job] = max(
                self._acked[channel.name].get(job, 0), run_id
            )
            self._save_state()


def peers_from_state(vault_root) -> Dict[str, Tuple[str, int]]:
    """The archive peers a vault last shipped to (``archive.json``)."""
    path = Path(vault_root) / STATE_FILE
    if not path.exists():
        return {}
    try:
        doc = json.loads(path.read_text())
    except (ValueError, OSError):
        return {}
    peers: Dict[str, Tuple[str, int]] = {}
    for name, address in doc.get("peers", {}).items():
        host, sep, port = str(address).rpartition(":")
        if sep and port.isdigit():
            peers[name] = (host or "127.0.0.1", int(port))
    return peers
