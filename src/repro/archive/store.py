"""The archive-side delta store: chains, merge/compaction, retention
(DESIGN.md §15.2–§15.3).

Layout (under the serving vault's root, like the replica store)::

    archive/
      <origin>/<job>/<base:08d>-<run:08d>.delta   one chain segment
      <origin>/<job>/merge.json                   resumable merge cursor

A job's **chain** is the contiguous segment path from base 0 to the tip:
``0→a``, ``a→b``, ..., ``y→tip``.  Its segment *endpoints* are the
restorable points.  Ingest is strictly FIFO — a pushed delta must apply
against the current tip (``base_run_id == tip``); a re-push of an
already-applied run is an idempotent no-op, which is what makes the wire
retry/response-cache path and shipper restarts safe.

Merging is crash-safe via a two-phase cursor: the merged segment is
written to a temp file, the cursor names sources and target, the temp is
atomically renamed over the final name, and only then are the sources
deleted.  :meth:`ArchiveStore.resume` (run at open) rolls an interrupted
merge forward past the publish point or discards the temp before it —
either way every restorable point of the pre-crash chain that retention
had not already expired is still restorable.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

from repro.archive.delta import (
    Delta,
    Recipe,
    fold,
    merge_deltas,
    pack_delta,
    unpack_delta,
)
from repro.archive.retention import RetentionPolicy
from repro.telemetry.registry import MetricsRegistry, get_registry

_SUFFIX = ".delta"
_CURSOR = "merge.json"


class ArchiveError(ValueError):
    """A delta the archive must refuse (out of order, unsafe name, absent)."""


def _safe(name: str, what: str) -> str:
    if not name or any(c in name for c in "/\\\0") or name in (".", ".."):
        raise ArchiveError(f"unsafe archive {what} {name!r}")
    return name


@dataclass(frozen=True)
class Segment:
    """One on-disk chain segment (parsed from its filename + header)."""

    base: int
    run: int
    path: Path
    timestamp: float
    bytes: int
    full: bool
    chunks: int

    @property
    def name(self) -> str:
        return self.path.name


class ArchiveStore:
    """Delta chains for any number of origins, under one directory."""

    def __init__(
        self, root, registry: Optional[MetricsRegistry] = None
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        registry = registry if registry is not None else get_registry()
        self._t_received = registry.counter(
            "archive.deltas_received", "delta objects accepted by this archive"
        ).labels()
        self._t_merges = registry.counter(
            "archive.merges", "adjacent delta pairs merged (compaction)"
        ).labels()
        self._t_expired = registry.counter(
            "archive.runs_expired", "restore points expired by retention"
        ).labels()
        self._t_chains = registry.gauge(
            "archive.chains", "job chains held by this archive"
        ).labels()
        #: Crash-point announcer (repro.audit.faults); None in production.
        self.fault_hook = None
        #: Serializes ingest/merge against reads — the server core runs
        #: handlers concurrently, and a fold mid-merge must not see a
        #: half-replaced chain.
        self._lock = threading.RLock()
        self.resume()

    def _fault(self, point: str) -> None:
        if self.fault_hook is not None:
            self.fault_hook(point)

    # -- layout -------------------------------------------------------------------
    def _job_dir(self, origin: str, job: str) -> Path:
        return self.root / _safe(origin, "origin") / _safe(job, "job")

    @staticmethod
    def _segment_name(base: int, run: int) -> str:
        return f"{base:08d}-{run:08d}{_SUFFIX}"

    def origins(self) -> List[str]:
        return sorted(p.name for p in self.root.iterdir() if p.is_dir())

    def jobs(self, origin: str) -> List[str]:
        root = self.root / _safe(origin, "origin")
        if not root.is_dir():
            return []
        return sorted(p.name for p in root.iterdir() if p.is_dir())

    def _read_header(self, path: Path) -> dict:
        from repro.archive.delta import unpack_header
        from repro.durability.errors import TornWriteError

        blob = path.read_bytes()
        try:
            header, _ = unpack_header(blob, artifact=path.name)
        except TornWriteError:
            raise ArchiveError(f"segment {path.name} is torn")
        return header

    def _segments(self, origin: str, job: str) -> List[Segment]:
        """Every well-formed segment file, sorted by (base, run)."""
        job_dir = self._job_dir(origin, job)
        if not job_dir.is_dir():
            return []
        out: List[Segment] = []
        for path in job_dir.iterdir():
            name = path.name
            if not name.endswith(_SUFFIX):
                continue
            stem = name[: -len(_SUFFIX)]
            base_s, sep, run_s = stem.partition("-")
            if not sep or not base_s.isdigit() or not run_s.isdigit():
                continue
            header = self._read_header(path)
            out.append(
                Segment(
                    base=int(base_s),
                    run=int(run_s),
                    path=path,
                    timestamp=float(header["timestamp"]),
                    bytes=path.stat().st_size,
                    full=bool(header["full"]),
                    chunks=int(header["chunks"]),
                )
            )
        return sorted(out, key=lambda s: (s.base, s.run))

    def chain(self, origin: str, job: str) -> List[Segment]:
        """The contiguous segment path from base 0 to the tip.

        Overlapping leftovers of an interrupted merge (a merged segment
        published, its sources not yet deleted) are resolved greedily:
        at each position the longest span wins, which is always the
        merged segment.
        """
        segments = self._segments(origin, job)
        path: List[Segment] = []
        cursor = 0
        by_base: Dict[int, List[Segment]] = {}
        for seg in segments:
            by_base.setdefault(seg.base, []).append(seg)
        while cursor in by_base:
            seg = max(by_base[cursor], key=lambda s: s.run)
            path.append(seg)
            cursor = seg.run
        covered = {s.path for s in path}
        stray = [s for s in segments if s.path not in covered]
        if stray and path and any(s.run > path[-1].run for s in stray):
            raise ArchiveError(
                f"broken chain for {origin}/{job}: segment "
                f"{max(stray, key=lambda s: s.run).name} is unreachable from 0"
            )
        return path

    def tip(self, origin: str, job: str) -> int:
        chain = self.chain(origin, job)
        return chain[-1].run if chain else 0

    def points(self, origin: str, job: str) -> List[int]:
        """The restorable run ids (chain segment endpoints), ascending."""
        return [seg.run for seg in self.chain(origin, job)]

    # -- crash recovery ----------------------------------------------------------
    def resume(self) -> int:
        """Finish (or discard) interrupted merges; sweep stray temp files.

        Runs at open.  Returns the number of merge cursors resolved.
        A published target rolls the merge *forward* (delete the shadowed
        sources); an unpublished one rolls it *back* (delete the temp) —
        both leave a clean, fully restorable chain.
        """
        resolved = 0
        for origin_dir in self.root.iterdir():
            if not origin_dir.is_dir():
                continue
            for job_dir in origin_dir.iterdir():
                if not job_dir.is_dir():
                    continue
                cursor = job_dir / _CURSOR
                if cursor.exists():
                    try:
                        doc = json.loads(cursor.read_text())
                    except ValueError:
                        doc = {}
                    target = job_dir / str(doc.get("target", ""))
                    if doc.get("target") and target.exists():
                        for source in doc.get("sources", []):
                            (job_dir / str(source)).unlink(missing_ok=True)
                    target_tmp = job_dir / (str(doc.get("target", "")) + ".tmp")
                    target_tmp.unlink(missing_ok=True)
                    cursor.unlink(missing_ok=True)
                    resolved += 1
                for stray in job_dir.glob("*.tmp"):
                    stray.unlink(missing_ok=True)
        return resolved

    # -- ingest -------------------------------------------------------------------
    def ingest(
        self, origin: str, job: str, blob: bytes, delta: Optional[Delta] = None
    ) -> Tuple[bool, int]:
        """Accept one pushed delta; returns ``(stored, new tip)``.

        The blob is fully CRC-verified before anything touches disk.  A
        run at or behind the tip is an idempotent no-op (``stored=False``);
        a run ahead of the tip whose base is not the tip is refused —
        chains only grow contiguously.
        """
        if delta is None:
            delta = unpack_delta(blob, artifact=f"pushed delta {origin}/{job}")
        if delta.job != job:
            raise ArchiveError(
                f"delta names job {delta.job!r}, pushed for {job!r}"
            )
        with self._lock:
            job_dir = self._job_dir(origin, job)
            tip = self.tip(origin, job)
            if delta.run_id <= tip:
                return False, tip
            if delta.base_run_id != tip:
                raise ArchiveError(
                    f"out-of-order delta for {origin}/{job}: base "
                    f"{delta.base_run_id} does not match tip {tip}"
                )
            job_dir.mkdir(parents=True, exist_ok=True)
            final = job_dir / self._segment_name(delta.base_run_id, delta.run_id)
            tmp = final.with_suffix(final.suffix + ".tmp")
            tmp.write_bytes(blob)
            tmp.replace(final)
        self._t_received.inc()
        self._publish_chain_gauge()
        return True, delta.run_id

    # -- reads --------------------------------------------------------------------
    def read_blob(self, origin: str, job: str, base: int, run: int) -> bytes:
        """One segment's raw bytes (the ``DELTA_FETCH`` body)."""
        with self._lock:
            path = self._job_dir(origin, job) / self._segment_name(base, run)
            if not path.exists():
                raise ArchiveError(
                    f"no segment {base}->{run} for {origin}/{job}"
                )
            return path.read_bytes()

    def load(self, origin: str, job: str, base: int, run: int) -> Delta:
        return unpack_delta(
            self.read_blob(origin, job, base, run),
            artifact=f"{origin}/{job}/{self._segment_name(base, run)}",
        )

    def _recipe_at(self, origin: str, job: str, run: int) -> Recipe:
        """Fold the chain prefix ending at restore point ``run`` (0 = {})."""
        if run == 0:
            return {}
        recipe: Recipe = {}
        for seg in self.chain(origin, job):
            if seg.run > run:
                break
            recipe = fold(recipe, self.load(origin, job, seg.base, seg.run))
            if seg.run == run:
                return recipe
        raise ArchiveError(
            f"run {run} is not a restorable point of {origin}/{job} "
            f"(points: {self.points(origin, job)})"
        )

    def restore_point(
        self, origin: str, job: str, as_of: int
    ) -> Tuple[Recipe, Dict[bytes, bytes]]:
        """The full recipe at ``as_of`` plus every chain-prefix chunk.

        By the chain-coverage invariant the returned chunk map resolves
        every fingerprint the recipe references.
        """
        with self._lock:
            chain = self.chain(origin, job)
            if as_of not in {seg.run for seg in chain}:
                raise ArchiveError(
                    f"run {as_of} is not a restorable point of {origin}/{job} "
                    f"(points: {[seg.run for seg in chain]})"
                )
            recipe: Recipe = {}
            chunks: Dict[bytes, bytes] = {}
            for seg in chain:
                if seg.run > as_of:
                    break
                delta = self.load(origin, job, seg.base, seg.run)
                recipe = fold(recipe, delta)
                chunks.update(delta.chunks)
            return recipe, chunks

    # -- merge / compaction -------------------------------------------------------
    def _merge_pair(self, origin: str, job: str, s1: Segment, s2: Segment) -> None:
        """Merge two adjacent segments, crash-safely (cursor protocol)."""
        from repro.audit.faults import (
            ARCHIVE_MERGE_PREPUBLISH,
            ARCHIVE_MERGE_PRECLEANUP,
        )

        job_dir = self._job_dir(origin, job)
        merged = merge_deltas(
            self.load(origin, job, s1.base, s1.run),
            self.load(origin, job, s2.base, s2.run),
            base_recipe=self._recipe_at(origin, job, s1.base),
        )
        target = self._segment_name(s1.base, s2.run)
        cursor = job_dir / _CURSOR
        cursor_tmp = cursor.with_suffix(".json.tmp")
        cursor_tmp.write_text(
            json.dumps({"sources": [s1.name, s2.name], "target": target})
        )
        cursor_tmp.replace(cursor)
        tmp = job_dir / (target + ".tmp")
        tmp.write_bytes(pack_delta(merged))
        self._fault(ARCHIVE_MERGE_PREPUBLISH)
        tmp.replace(job_dir / target)
        self._fault(ARCHIVE_MERGE_PRECLEANUP)
        s1.path.unlink(missing_ok=True)
        s2.path.unlink(missing_ok=True)
        cursor.unlink(missing_ok=True)
        self._t_merges.inc()

    def compact(self, origin: str, job: str, keep: Set[int]) -> List[int]:
        """Merge away every interior restore point not in ``keep``.

        The tip survives regardless.  Returns the expired run ids.  One
        pair merges at a time, each behind its own cursor, so a crash at
        any moment costs at most a re-merge — never a surviving point.
        """
        expired: List[int] = []
        while True:
            with self._lock:
                chain = self.chain(origin, job)
                victim = None
                for s1, s2 in zip(chain, chain[1:]):
                    if s1.run not in keep:
                        victim = (s1, s2)
                        break
                if victim is None:
                    return expired
                self._merge_pair(origin, job, *victim)
            expired.append(victim[0].run)

    def apply_retention(
        self, origin: str, job: str, policy: RetentionPolicy
    ) -> List[int]:
        """Expire this chain's points per ``policy`` (merge forward, drop)."""
        chain = self.chain(origin, job)
        keep = policy.keep([(seg.run, seg.timestamp) for seg in chain])
        expired = self.compact(origin, job, keep)
        if expired:
            self._t_expired.inc(len(expired))
        return expired

    # -- status -------------------------------------------------------------------
    def _publish_chain_gauge(self) -> None:
        self._t_chains.set(
            sum(len(self.jobs(origin)) for origin in self.origins())
        )

    def status(self) -> dict:
        """JSON-able inventory (the ``ARCHIVE_STATUS`` body)."""
        with self._lock:
            return self._status_locked()

    def _status_locked(self) -> dict:
        origins: dict = {}
        for origin in self.origins():
            jobs: dict = {}
            for job in self.jobs(origin):
                chain = self.chain(origin, job)
                jobs[job] = {
                    "tip": chain[-1].run if chain else 0,
                    "points": [seg.run for seg in chain],
                    "segments": [
                        {
                            "base": seg.base,
                            "run": seg.run,
                            "bytes": seg.bytes,
                            "timestamp": seg.timestamp,
                            "full": seg.full,
                            "chunks": seg.chunks,
                        }
                        for seg in chain
                    ],
                    "bytes": sum(seg.bytes for seg in chain),
                }
            origins[origin] = jobs
        return {"root": str(self.root), "origins": origins}
