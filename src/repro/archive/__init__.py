"""repro.archive: incremental-forever delta shipping, archive merge/
compaction, retention, and point-in-time restore (DESIGN.md §15).

The origin cuts one self-describing delta object per committed run
(:mod:`repro.archive.delta`) and ships it asynchronously
(:mod:`repro.archive.shipper`); the archive appends it to the job's
chain, merges and expires out-of-line (:mod:`repro.archive.store`,
:mod:`repro.archive.retention`); any retained run restores byte-
identically from base + merged deltas alone
(:mod:`repro.archive.restore`) — the walb-tools-style storage→archive
pipeline the ROADMAP names, with the heavy rewriting kept off the
inline backup path per the hybrid inline/out-of-line argument.
"""

from repro.archive.delta import (
    KIND_DELTA,
    Delta,
    cut_delta,
    fold,
    merge_deltas,
    pack_delta,
    unpack_delta,
)
from repro.archive.restore import restore_local, restore_remote
from repro.archive.retention import RetentionPolicy
from repro.archive.shipper import ArchiveShipper
from repro.archive.store import ArchiveError, ArchiveStore

__all__ = [
    "KIND_DELTA",
    "Delta",
    "cut_delta",
    "fold",
    "merge_deltas",
    "pack_delta",
    "unpack_delta",
    "restore_local",
    "restore_remote",
    "RetentionPolicy",
    "ArchiveShipper",
    "ArchiveError",
    "ArchiveStore",
]
