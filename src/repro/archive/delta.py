"""Per-run delta objects: the archive's unit of shipment (DESIGN.md §15.1).

After dedup-2 seals a run, the origin cuts one **delta object** per run:
the chunks that are new to the job's chain plus the recipe diff against
the previous run.  A delta is self-describing and CRC32C-framed like
every other persistent artifact:

::

    Superblock  kind=b"DLTA", generation=run_id, payload=header JSON
    frame[0]    manifest JSON: {"files": {path: entry-or-null}}
    frame[1..]  chunk records: u32 fp_len + fp + payload

The header carries ``origin``/``job``/``run_id``/``base_run_id``/
``timestamp`` plus counts, so a reader can audit a delta without its
surrounding directory.  ``base_run_id == 0`` means the delta applies to
the empty recipe — a **base image**.  A ``full`` delta's files map is the
complete recipe of ``run_id`` (no nulls are folded; everything else is
dropped), which is what a base image is and what the origin falls back
to when the predecessor's recipe has already been forgotten — a full
delta is always a correct (if redundant) superset.

Merge algebra (DESIGN.md §15.2): ``Delta(a→b) ⊕ Delta(b→c) = Delta(a→c)``
— chunk union plus composed files maps (newer entries win, deletions
compose).  When the recipe at ``a`` is known the union is **pruned** to
the fingerprints of ``recipe(c) \\ recipe(a)``: any chunk a later run
still references either re-enters a later delta's recipe continuously
through ``c`` (so it survives the prune) or already lives in the chain
prefix — the chain-coverage induction that makes compaction safe.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.director.metadata import FileIndexEntry, FileMetadata
from repro.durability.errors import CorruptionError, TornWriteError
from repro.durability.framing import (
    Superblock,
    frame_record,
    scan_frames,
    unpack_superblock,
)

#: Superblock artifact kind stamped into delta objects.
KIND_DELTA = b"DLTA"

_FP_LEN = struct.Struct("<I")

#: A recipe entry, catalog-shaped: path/size/mode/mtime/fingerprints(hex).
Entry = Dict[str, object]
#: A recipe: path -> entry.  A diff maps path -> entry-or-None (removed).
Recipe = Dict[str, Entry]
FilesDiff = Dict[str, Optional[Entry]]


@dataclass
class Delta:
    """One parsed (or about-to-be-packed) per-run delta object."""

    origin: str
    job: str
    run_id: int
    base_run_id: int
    timestamp: float
    full: bool
    #: path -> catalog-shaped entry, or None for a removal.  When ``full``
    #: the map is the complete recipe of ``run_id`` (values never None).
    files: FilesDiff
    #: fp -> payload for every chunk new against the base recipe.
    chunks: Dict[bytes, bytes] = field(default_factory=dict)
    logical_bytes: int = 0

    @property
    def chunk_bytes(self) -> int:
        return sum(len(d) for d in self.chunks.values())


def entry_of(e: FileIndexEntry) -> Entry:
    """A catalog-shaped entry dict for one file index entry."""
    return {
        "path": e.metadata.path,
        "size": e.metadata.size,
        "mode": e.metadata.mode,
        "mtime": e.metadata.mtime,
        "fingerprints": [fp.hex() for fp in e.fingerprints],
    }


def index_entry(entry: Entry) -> FileIndexEntry:
    """The inverse of :func:`entry_of`."""
    return FileIndexEntry(
        FileMetadata(
            path=str(entry["path"]),
            size=int(entry["size"]),
            mode=int(entry["mode"]),
            mtime=float(entry["mtime"]),
        ),
        [bytes.fromhex(h) for h in entry["fingerprints"]],
    )


def entry_fps(entry: Entry) -> List[bytes]:
    return [bytes.fromhex(h) for h in entry["fingerprints"]]


def recipe_fps(recipe: Recipe) -> set:
    """Every fingerprint any entry of a recipe references."""
    return {fp for entry in recipe.values() for fp in entry_fps(entry)}


def fold(recipe: Recipe, delta: Delta) -> Recipe:
    """Apply one delta's files map to a recipe, yielding the next recipe."""
    if delta.full:
        return {p: e for p, e in delta.files.items() if e is not None}
    out = dict(recipe)
    for path, entry in delta.files.items():
        if entry is None:
            out.pop(path, None)
        else:
            out[path] = entry
    return out


# -- cutting -----------------------------------------------------------------------
def cut_delta(
    vault,
    run,
    base_run_id: int = 0,
    origin: str = "",
) -> Delta:
    """Cut the delta for ``run`` against the recipe of ``base_run_id``.

    ``run`` is a :class:`~repro.system.vault.VaultRun`; the base recipe is
    looked up in the vault's catalog (same job).  The chunk log is already
    cleared by the inline dedup-2, so payloads are read back from the
    content-addressed chunk store — stable until ``forget`` + ``gc``, and
    byte-identical by construction.  When ``base_run_id`` is 0 or its
    recipe is gone from the catalog, the cut falls back to a ``full``
    delta (complete recipe, all referenced chunks).
    """
    base_recipe: Optional[Recipe] = {} if base_run_id == 0 else None
    if base_run_id:
        for prior in vault.runs(run.job):
            if prior.run_id == base_run_id:
                base_recipe = {e.metadata.path: entry_of(e) for e in prior.files}
                break
    recipe = {e.metadata.path: entry_of(e) for e in run.files}
    full = base_recipe is None or base_run_id == 0
    if full:
        files: FilesDiff = dict(recipe)
        new_fps = recipe_fps(recipe)
    else:
        files = {
            path: entry
            for path, entry in recipe.items()
            if base_recipe.get(path) != entry
        }
        for path in base_recipe:
            if path not in recipe:
                files[path] = None
        new_fps = recipe_fps(recipe) - recipe_fps(base_recipe)
    source = vault.chunk_store
    if vault.repository.cold is not None:
        source = vault.cold_reader(sorted(new_fps))
    chunks = {fp: source.read_chunk(fp) for fp in sorted(new_fps)}
    return Delta(
        origin=origin,
        job=run.job,
        run_id=run.run_id,
        base_run_id=base_run_id,
        timestamp=run.timestamp,
        full=full,
        files=files,
        chunks=chunks,
        logical_bytes=run.logical_bytes,
    )


# -- packing -----------------------------------------------------------------------
def pack_delta(delta: Delta) -> bytes:
    """Serialize a delta: superblock + manifest frame + chunk frames."""
    header = {
        "origin": delta.origin,
        "job": delta.job,
        "run_id": delta.run_id,
        "base_run_id": delta.base_run_id,
        "timestamp": delta.timestamp,
        "full": delta.full,
        "files": len(delta.files),
        "chunks": len(delta.chunks),
        "chunk_bytes": delta.chunk_bytes,
        "logical_bytes": delta.logical_bytes,
    }
    parts = [
        Superblock(
            KIND_DELTA, delta.run_id, json.dumps(header).encode("utf-8")
        ).pack(),
        frame_record(json.dumps({"files": delta.files}).encode("utf-8")),
    ]
    for fp in sorted(delta.chunks):
        data = delta.chunks[fp]
        parts.append(frame_record(_FP_LEN.pack(len(fp)) + fp + data))
    return b"".join(parts)


def unpack_header(blob: bytes, *, artifact: str = "delta") -> Tuple[dict, int]:
    """Parse and verify just the superblock header of a packed delta.

    Returns ``(header doc, offset past the superblock)``.
    """
    sb, offset = unpack_superblock(blob, artifact=artifact)
    if sb.kind != KIND_DELTA:
        raise CorruptionError(
            f"{artifact}: superblock kind {sb.kind!r} is not a delta",
            artifact=artifact, offset=0,
        )
    try:
        header = json.loads(sb.payload.decode("utf-8"))
    except ValueError as exc:
        raise CorruptionError(
            f"{artifact}: undecodable delta header: {exc}",
            artifact=artifact, offset=0,
        ) from None
    return header, offset


def unpack_delta(blob: bytes, *, artifact: str = "delta") -> Delta:
    """Parse and fully verify a packed delta (CRC per record).

    Raises :class:`TornWriteError` on a truncated tail and
    :class:`CorruptionError` on any CRC/kind/format damage — a delta is
    only ever accepted whole.
    """
    header, offset = unpack_header(blob, artifact=artifact)
    scan = scan_frames(blob, offset, artifact=artifact)
    if scan.corrupt or scan.stopped_reason:
        reason = scan.stopped_reason or scan.corrupt[0].error
        raise CorruptionError(
            f"{artifact}: corrupt delta record ({reason})",
            artifact=artifact, offset=scan.valid_end,
        )
    if scan.torn_bytes:
        raise TornWriteError(
            f"{artifact}: delta torn mid-write ({scan.torn_bytes} trailing bytes)",
            artifact=artifact, offset=scan.valid_end,
        )
    payloads = [r.payload for r in scan.records]
    expected = 1 + int(header["chunks"])
    if len(payloads) != expected:
        raise TornWriteError(
            f"{artifact}: {len(payloads)} records for a delta declaring {expected}",
            artifact=artifact, offset=scan.valid_end,
        )
    try:
        manifest = json.loads(payloads[0].decode("utf-8"))
        files = dict(manifest["files"])
    except (ValueError, KeyError) as exc:
        raise CorruptionError(
            f"{artifact}: undecodable delta manifest: {exc}",
            artifact=artifact, offset=offset,
        ) from None
    chunks: Dict[bytes, bytes] = {}
    for payload in payloads[1:]:
        (fp_len,) = _FP_LEN.unpack_from(payload, 0)
        fp = bytes(payload[_FP_LEN.size : _FP_LEN.size + fp_len])
        chunks[fp] = bytes(payload[_FP_LEN.size + fp_len :])
    return Delta(
        origin=str(header.get("origin", "")),
        job=str(header["job"]),
        run_id=int(header["run_id"]),
        base_run_id=int(header["base_run_id"]),
        timestamp=float(header["timestamp"]),
        full=bool(header["full"]),
        files=files,
        chunks=chunks,
        logical_bytes=int(header.get("logical_bytes", 0)),
    )


# -- merging -----------------------------------------------------------------------
def merge_deltas(
    older: Delta, newer: Delta, base_recipe: Optional[Recipe] = None
) -> Delta:
    """``Delta(a→b) ⊕ Delta(b→c) → Delta(a→c)``.

    ``base_recipe`` is the recipe at ``older.base_run_id`` when the caller
    knows it (the archive folds its chain prefix); with it — or trivially
    when the merged delta is full against base 0 — the chunk union is
    pruned to ``recipe(c) \\ recipe(a)``, which is compaction: chunks only
    the merged-away run referenced are dropped.  Without it the union is
    kept whole (always correct, merely redundant).
    """
    if older.job != newer.job:
        raise ValueError(f"cannot merge jobs {older.job!r} and {newer.job!r}")
    if newer.base_run_id != older.run_id:
        raise ValueError(
            f"deltas are not adjacent: {older.base_run_id}->{older.run_id} "
            f"then {newer.base_run_id}->{newer.run_id}"
        )
    if newer.full:
        files: FilesDiff = dict(newer.files)
        full = True
    elif older.full:
        files = dict(
            fold({p: e for p, e in older.files.items() if e is not None}, newer)
        )
        full = True
    else:
        files = dict(older.files)
        files.update(newer.files)
        full = False
    chunks = dict(older.chunks)
    chunks.update(newer.chunks)
    if base_recipe is None and older.base_run_id == 0:
        base_recipe = {}
    if base_recipe is not None:
        merged_probe = Delta(
            origin=newer.origin, job=newer.job, run_id=newer.run_id,
            base_run_id=older.base_run_id, timestamp=newer.timestamp,
            full=full, files=files,
        )
        final = fold(dict(base_recipe), merged_probe)
        keep = recipe_fps(final) - recipe_fps(base_recipe)
        chunks = {fp: d for fp, d in chunks.items() if fp in keep}
    return Delta(
        origin=newer.origin or older.origin,
        job=newer.job,
        run_id=newer.run_id,
        base_run_id=older.base_run_id,
        timestamp=newer.timestamp,
        full=full,
        files=files,
        chunks=chunks,
        logical_bytes=newer.logical_bytes,
    )
