"""Retention policies over archive chains (DESIGN.md §15.3).

A :class:`RetentionPolicy` decides which restore points of a job's delta
chain survive: the most recent ``keep_last`` runs, plus the newest run of
each of the last ``keep_daily`` distinct UTC days, plus the newest run of
each of the last ``keep_weekly`` distinct ISO weeks.  The chain tip is
always kept — expiring it would orphan the shipper's FIFO contract
(every push applies against the archive's current tip).

Expiry never deletes data a survivor needs: an expired run's delta is
merged *forward* into its successor (``repro.archive.delta.merge_deltas``)
before the merged-away point disappears, so every surviving ``--as-of``
point stays restorable from the compacted chain.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime, timezone
from typing import List, Sequence, Set, Tuple


@dataclass(frozen=True)
class RetentionPolicy:
    """keep-last-K / keep-daily / keep-weekly chains."""

    keep_last: int = 1
    keep_daily: int = 0
    keep_weekly: int = 0

    def __post_init__(self) -> None:
        if self.keep_last < 1:
            raise ValueError("keep_last must be >= 1 (the tip always survives)")
        if self.keep_daily < 0 or self.keep_weekly < 0:
            raise ValueError("keep_daily/keep_weekly must be >= 0")

    @classmethod
    def parse(cls, spec: str) -> "RetentionPolicy":
        """Parse ``keep-last=K[,daily=D][,weekly=W]`` (CLI ``--retention``)."""
        fields = {"keep-last": 1, "daily": 0, "weekly": 0}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, value = part.partition("=")
            key = key.strip().lower()
            if not sep or key not in fields or not value.strip().isdigit():
                raise ValueError(
                    f"bad retention spec {spec!r}: expected "
                    "keep-last=K[,daily=D][,weekly=W]"
                )
            fields[key] = int(value.strip())
        return cls(
            keep_last=fields["keep-last"],
            keep_daily=fields["daily"],
            keep_weekly=fields["weekly"],
        )

    def spec(self) -> str:
        out = f"keep-last={self.keep_last}"
        if self.keep_daily:
            out += f",daily={self.keep_daily}"
        if self.keep_weekly:
            out += f",weekly={self.keep_weekly}"
        return out

    def keep(self, points: Sequence[Tuple[int, float]]) -> Set[int]:
        """The run ids that survive, given ``(run_id, wall timestamp)``
        restore points of one job's chain (any order)."""
        ordered = sorted(points, key=lambda p: p[0])
        if not ordered:
            return set()
        keep: Set[int] = {ordered[-1][0]}  # the tip, unconditionally
        keep.update(run_id for run_id, _ in ordered[-self.keep_last:])
        if self.keep_daily:
            keep.update(
                self._newest_per_bucket(ordered, self.keep_daily, self._day)
            )
        if self.keep_weekly:
            keep.update(
                self._newest_per_bucket(ordered, self.keep_weekly, self._week)
            )
        return keep

    def expired(self, points: Sequence[Tuple[int, float]]) -> List[int]:
        """The run ids :meth:`keep` does not retain, oldest first."""
        keep = self.keep(points)
        return sorted(run_id for run_id, _ in points if run_id not in keep)

    @staticmethod
    def _day(ts: float) -> str:
        return datetime.fromtimestamp(ts, tz=timezone.utc).strftime("%Y-%m-%d")

    @staticmethod
    def _week(ts: float) -> str:
        iso = datetime.fromtimestamp(ts, tz=timezone.utc).isocalendar()
        return f"{iso[0]}-W{iso[1]:02d}"

    @staticmethod
    def _newest_per_bucket(ordered, count: int, bucket) -> Set[int]:
        newest: dict = {}
        for run_id, ts in ordered:  # ascending: later runs overwrite
            newest[bucket(ts)] = run_id
        recent = sorted(newest)[-count:]
        return {newest[b] for b in recent}
