"""Deterministic simulated time.

A :class:`SimClock` is a monotone accumulator of simulated seconds.  Each
backup server in a multi-server run owns a :class:`ClockLane`; cluster-wide
barriers (fingerprint exchange, end of PSIL/PSIU rounds) synchronise lanes to
the maximum, which models the paper's "all servers cooperate" phases where the
slowest server gates the round.
"""

from __future__ import annotations

from typing import Iterable


class SimClock:
    """A monotone simulated clock measured in seconds."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError("clock cannot start before t=0")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Advance the clock by a non-negative duration; return the new time."""
        if seconds < 0:
            raise ValueError(f"cannot advance by negative time ({seconds})")
        self._now += seconds
        return self._now

    def advance_to(self, t: float) -> float:
        """Move the clock forward to absolute time ``t`` (no-op if already past)."""
        if t > self._now:
            self._now = t
        return self._now

    def elapsed_since(self, t0: float) -> float:
        """Simulated seconds elapsed since an earlier reading ``t0``."""
        if t0 > self._now:
            raise ValueError("t0 is in the future")
        return self._now - t0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SimClock(now={self._now:.6f})"


class ClockLane(SimClock):
    """A named per-server clock that can be barrier-synchronised with peers."""

    __slots__ = ("name",)

    def __init__(self, name: str, start: float = 0.0) -> None:
        super().__init__(start)
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ClockLane({self.name!r}, now={self.now:.6f})"


def barrier(lanes: Iterable[SimClock]) -> float:
    """Synchronise all lanes to the latest one; return the barrier time.

    Models a cluster-wide rendezvous: no server proceeds until every server
    has finished the current phase.
    """
    lanes = list(lanes)
    if not lanes:
        raise ValueError("barrier over no lanes")
    t = max(lane.now for lane in lanes)
    for lane in lanes:
        lane.advance_to(t)
    return t
