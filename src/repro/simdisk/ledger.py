"""A categorised time ledger on top of a simulated clock.

Every phase of TPDS charges its device time here under a category name
("dedup1.network", "sil.scan", "siu.write", ...), so throughput figures can
be decomposed exactly the way the paper's Figures 8-10 decompose them.

Each charge is also mirrored into the telemetry registry (when one is
enabled) as ``meter.seconds{category=...}`` — overlapped time recorded
with :meth:`Meter.record` lands in ``meter.seconds_overlapped`` instead so
summing ``meter.seconds`` over categories still reproduces wall time.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Optional

from repro.simdisk.clock import SimClock
from repro.telemetry.registry import MetricsRegistry, get_registry


class Meter:
    """Accumulates simulated time by category while advancing a clock."""

    def __init__(self, clock: SimClock, registry: Optional[MetricsRegistry] = None) -> None:
        self.clock = clock
        self.by_category: Dict[str, float] = defaultdict(float)
        registry = registry if registry is not None else get_registry()
        self._charged_family = registry.counter(
            "meter.seconds", "simulated device seconds charged, by category"
        )
        self._recorded_family = registry.counter(
            "meter.seconds_overlapped",
            "simulated seconds of phases overlapped with (not added to) wall time",
        )
        self._charged: Dict[str, object] = {}
        self._recorded: Dict[str, object] = {}

    def _counter(self, cache: Dict[str, object], family, category: str):
        child = cache.get(category)
        if child is None:
            child = cache[category] = family.labels(category=category)
        return child

    def charge(self, category: str, seconds: float) -> float:
        """Advance the clock by ``seconds`` and record it under ``category``."""
        if seconds < 0:
            raise ValueError("cannot charge negative time")
        self.clock.advance(seconds)
        self.by_category[category] += seconds
        self._counter(self._charged, self._charged_family, category).inc(seconds)
        return seconds

    def record(self, category: str, seconds: float) -> float:
        """Record time that has already been charged to the clock elsewhere
        (used when overlapping phases share one wall-clock interval)."""
        if seconds < 0:
            raise ValueError("cannot record negative time")
        self.by_category[category] += seconds
        self._counter(self._recorded, self._recorded_family, category).inc(seconds)
        return seconds

    def total(self, prefix: str = "") -> float:
        """Sum of all categories starting with ``prefix``."""
        return sum(t for cat, t in self.by_category.items() if cat.startswith(prefix))

    def snapshot(self) -> Dict[str, float]:
        """A plain-dict copy of the ledger."""
        return dict(self.by_category)
