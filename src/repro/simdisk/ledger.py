"""A categorised time ledger on top of a simulated clock.

Every phase of TPDS charges its device time here under a category name
("dedup1.network", "sil.scan", "siu.write", ...), so throughput figures can
be decomposed exactly the way the paper's Figures 8-10 decompose them.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict

from repro.simdisk.clock import SimClock


class Meter:
    """Accumulates simulated time by category while advancing a clock."""

    def __init__(self, clock: SimClock) -> None:
        self.clock = clock
        self.by_category: Dict[str, float] = defaultdict(float)

    def charge(self, category: str, seconds: float) -> float:
        """Advance the clock by ``seconds`` and record it under ``category``."""
        if seconds < 0:
            raise ValueError("cannot charge negative time")
        self.clock.advance(seconds)
        self.by_category[category] += seconds
        return seconds

    def record(self, category: str, seconds: float) -> float:
        """Record time that has already been charged to the clock elsewhere
        (used when overlapping phases share one wall-clock interval)."""
        if seconds < 0:
            raise ValueError("cannot record negative time")
        self.by_category[category] += seconds
        return seconds

    def total(self, prefix: str = "") -> float:
        """Sum of all categories starting with ``prefix``."""
        return sum(t for cat, t in self.by_category.items() if cat.startswith(prefix))

    def snapshot(self) -> Dict[str, float]:
        """A plain-dict copy of the ledger."""
        return dict(self.by_category)
