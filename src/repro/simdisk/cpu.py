"""CPU cost model for the compute-side of de-duplication.

The paper measured 2.749 million in-memory fingerprint lookups per second
with 320 comparisons each on a 3.0 GHz Xeon (Section 4.2), and notes SHA-1
and Rabin chunking are cheap relative to disk.  These terms matter only when
the I/O terms have been engineered away (which is exactly DEBAR's point), so
we keep them in the model to avoid reporting infinite in-memory throughput.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util import MB


@dataclass(frozen=True)
class CpuModel:
    """Per-operation CPU service times.

    Parameters
    ----------
    fp_search_rate:
        In-memory bucket-search operations per second (paper: 2.749e6 full
        320-comparison bucket searches per second).
    sha1_rate:
        SHA-1 digest throughput in bytes/second.
    chunking_rate:
        CDC (Rabin rolling hash) throughput in bytes/second.
    filter_probe_rate:
        Preliminary-filter / index-cache hash-table probes per second.
    """

    fp_search_rate: float = 2.749e6
    sha1_rate: float = 350.0 * MB
    chunking_rate: float = 400.0 * MB
    filter_probe_rate: float = 5.0e6

    def __post_init__(self) -> None:
        for name in ("fp_search_rate", "sha1_rate", "chunking_rate", "filter_probe_rate"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")

    def fp_search_time(self, n_searches: int) -> float:
        """Time for ``n_searches`` in-memory bucket searches."""
        if n_searches < 0:
            raise ValueError("n_searches must be non-negative")
        return n_searches / self.fp_search_rate

    def sha1_time(self, nbytes: float) -> float:
        """Time to SHA-1 digest ``nbytes``."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return nbytes / self.sha1_rate

    def chunking_time(self, nbytes: float) -> float:
        """Time to run content-defined chunking over ``nbytes``."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return nbytes / self.chunking_rate

    def filter_probe_time(self, n_probes: int) -> float:
        """Time for ``n_probes`` preliminary-filter hash probes."""
        if n_probes < 0:
            raise ValueError("n_probes must be non-negative")
        return n_probes / self.filter_probe_rate
