"""Device cost models and the simulated clock.

DEBAR's evaluation is dominated by device service times: sequential index
scans, random index probes, chunk-log replays, container appends and NIC
transfers.  This package provides a deterministic :class:`SimClock` plus
parametric :class:`DiskModel`, :class:`NetworkModel` and :class:`CpuModel`
cost models.  The de-duplication logic elsewhere in :mod:`repro` runs for
real; only *time* is simulated, using models calibrated to the paper's
measured hardware rates (see :mod:`repro.simdisk.presets`).
"""

from repro.simdisk.clock import SimClock, ClockLane, barrier
from repro.simdisk.ledger import Meter
from repro.simdisk.disk import DiskModel
from repro.simdisk.network import NetworkModel
from repro.simdisk.cpu import CpuModel
from repro.simdisk.presets import (
    paper_index_disk,
    paper_log_disk,
    paper_repository_disk,
    paper_network,
    paper_cpu,
    PaperRig,
    paper_rig,
)

__all__ = [
    "SimClock",
    "ClockLane",
    "barrier",
    "Meter",
    "DiskModel",
    "NetworkModel",
    "CpuModel",
    "paper_index_disk",
    "paper_log_disk",
    "paper_repository_disk",
    "paper_network",
    "paper_cpu",
    "PaperRig",
    "paper_rig",
]
