"""Parametric disk / RAID service-time model.

Two access regimes matter for de-duplication stores:

* **random small I/O** — dominated by seek + rotational latency; the data
  transfer itself is negligible (the paper notes a random 8 KB read costs
  about the same as a random 512 B read).  A RAID of ``raid_width`` disks
  serves independent random probes concurrently.
* **large sequential I/O** — dominated by the streaming transfer rate of the
  array; a single positioning delay amortises to nothing over multi-gigabyte
  scans (SIL reads "thousands of buckets per I/O").

All methods return the service time in seconds; callers charge it to a
:class:`~repro.simdisk.clock.SimClock`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util import MB


@dataclass(frozen=True)
class DiskModel:
    """Service times for a disk or RAID array.

    Parameters
    ----------
    seq_read_rate, seq_write_rate:
        Sustained streaming rates in bytes/second.
    random_io_time:
        Positioning (seek + rotational) delay of one random access, seconds.
    raid_width:
        Number of spindles that can serve *independent* random probes
        concurrently.  Sequential rates are already aggregate array rates.
    """

    seq_read_rate: float = 200.0 * MB
    seq_write_rate: float = 200.0 * MB
    random_io_time: float = 15.0e-3
    raid_width: int = 1

    def __post_init__(self) -> None:
        if self.seq_read_rate <= 0 or self.seq_write_rate <= 0:
            raise ValueError("sequential rates must be positive")
        if self.random_io_time < 0:
            raise ValueError("random_io_time must be non-negative")
        if self.raid_width < 1:
            raise ValueError("raid_width must be >= 1")

    # -- sequential regime -------------------------------------------------
    def seq_read_time(self, nbytes: float) -> float:
        """Time to stream-read ``nbytes`` (one positioning delay + transfer)."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if nbytes == 0:
            return 0.0
        return self.random_io_time + nbytes / self.seq_read_rate

    def seq_write_time(self, nbytes: float) -> float:
        """Time to stream-write ``nbytes``."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if nbytes == 0:
            return 0.0
        return self.random_io_time + nbytes / self.seq_write_rate

    # -- append regime -----------------------------------------------------
    def append_read_time(self, nbytes: float) -> float:
        """Transfer-only read time (head already positioned).

        For scans that continue where the previous one left off — replaying
        an append log the disk is already parked on.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return nbytes / self.seq_read_rate

    def append_write_time(self, nbytes: float) -> float:
        """Transfer-only write time for appends to an open log.

        Append-only structures (the chunk log, the container log) keep the
        head at the tail, so no positioning delay is charged per append —
        charging one would swamp scaled-down runs with fictitious seeks.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return nbytes / self.seq_write_rate

    # -- random regime -----------------------------------------------------
    def random_read_time(self, n_ios: int, io_bytes: float = 0.0) -> float:
        """Time for ``n_ios`` independent random reads spread over the RAID.

        Transfer of ``io_bytes`` per access is included but is usually a
        second-order term for the small I/Os of fingerprint probes.
        """
        if n_ios < 0:
            raise ValueError("n_ios must be non-negative")
        if n_ios == 0:
            return 0.0
        per_io = self.random_io_time + io_bytes / self.seq_read_rate
        return n_ios * per_io / self.raid_width

    def random_write_time(self, n_ios: int, io_bytes: float = 0.0) -> float:
        """Time for ``n_ios`` independent random writes (read-modify-write is
        two accesses and should be charged as two I/Os by the caller)."""
        if n_ios < 0:
            raise ValueError("n_ios must be non-negative")
        if n_ios == 0:
            return 0.0
        per_io = self.random_io_time + io_bytes / self.seq_write_rate
        return n_ios * per_io / self.raid_width

    # -- derived figures -----------------------------------------------------
    @property
    def random_iops(self) -> float:
        """Aggregate random I/O operations per second of the array."""
        return self.raid_width / self.random_io_time
