"""Cost-model presets calibrated to the paper's measured hardware.

Calibration sources (all from the paper):

* random on-disk fingerprint lookup: 522 fps on an 8-disk RAID
  (Section 6.1.3) -> per-disk positioning delay 8/522 s = 15.33 ms; a random
  update is a read-modify-write (two accesses), giving 261 fps vs the
  measured 270 fps — within 4 %.
* sequential index scan: "a disk index supporting a 200 MB/s sequential disk
  I/O transfer rate" (Section 5.2); SIL over 32 GB measured 2.53 min, i.e.
  an effective ~216 MB/s — we use 216 MB/s so Figure 10's absolute times
  land on the paper's measurements.
* SIU over 32 GB measured 6.16 min = 2.43x SIL: a read + an update pass plus
  write-back overheads; we model SIU as a full sequential read plus a full
  sequential write with a write rate chosen to match (see below).
* chunk-log sustained read: 224 MB/s (Section 6.1.2, "exactly the sustained
  read throughput of the disk log").
* server NIC: 210 MB/s sustained (Section 6.1.2, "exactly the sustained
  throughput of the network card").
* in-memory fingerprint search: 2.749 M searches/s (Section 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.simdisk.cpu import CpuModel
from repro.simdisk.disk import DiskModel
from repro.simdisk.network import NetworkModel
from repro.util import GB, MB

#: SIL effective index-scan read rate implied by "2.53 min for 32 GB".
INDEX_SEQ_READ_RATE = 32 * GB / (2.53 * 60)

#: SIU is a sequential read plus a sequential write of the index; the write
#: rate below makes 32 GB take the measured 6.16 min total
#: (6.16 min - 2.53 min read = 3.63 min writing 32 GB -> 150.5 MB/s).
INDEX_SEQ_WRITE_RATE = 32 * GB / ((6.16 - 2.53) * 60)

#: Random-probe positioning delay implied by "522 lookups/s on 8 disks".
RANDOM_PROBE_TIME = 8 / 522.0


def paper_index_disk() -> DiskModel:
    """The 8-disk RAID that holds the DEBAR/DDFS disk index."""
    return DiskModel(
        seq_read_rate=INDEX_SEQ_READ_RATE,
        seq_write_rate=INDEX_SEQ_WRITE_RATE,
        random_io_time=RANDOM_PROBE_TIME,
        raid_width=8,
    )


def paper_log_disk() -> DiskModel:
    """The 8-disk RAID that holds the dedup-1 chunk log (224 MB/s reads)."""
    return DiskModel(
        seq_read_rate=224 * MB,
        seq_write_rate=224 * MB,
        random_io_time=RANDOM_PROBE_TIME,
        raid_width=8,
    )


def paper_repository_disk() -> DiskModel:
    """A chunk-repository storage node (container log appends/reads)."""
    return DiskModel(
        seq_read_rate=224 * MB,
        seq_write_rate=224 * MB,
        random_io_time=RANDOM_PROBE_TIME,
        raid_width=8,
    )


def paper_network() -> NetworkModel:
    """A backup server's NIC capacity (two bonded GigE, 210 MB/s sustained)."""
    return NetworkModel(bandwidth=210 * MB, rtt=0.2e-3)


def paper_cpu() -> CpuModel:
    """The 3.0 GHz Xeon CPU model."""
    return CpuModel()


@dataclass
class PaperRig:
    """One backup server's worth of calibrated device models."""

    index_disk: DiskModel = field(default_factory=paper_index_disk)
    log_disk: DiskModel = field(default_factory=paper_log_disk)
    repository_disk: DiskModel = field(default_factory=paper_repository_disk)
    network: NetworkModel = field(default_factory=paper_network)
    cpu: CpuModel = field(default_factory=paper_cpu)


def paper_rig() -> PaperRig:
    """A fresh bundle of paper-calibrated device models."""
    return PaperRig()
