"""Network service-time model for client→server and server↔server transfers."""

from __future__ import annotations

from dataclasses import dataclass

from repro.util import MB


@dataclass(frozen=True)
class NetworkModel:
    """A point-to-point link (or a server's aggregate NIC capacity).

    Parameters
    ----------
    bandwidth:
        Sustained payload bandwidth in bytes/second.  The paper's servers
        measured 210 MB/s over two bonded gigabit NICs.
    rtt:
        Round-trip latency in seconds, charged once per message exchange.
    """

    bandwidth: float = 210.0 * MB
    rtt: float = 0.2e-3

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if self.rtt < 0:
            raise ValueError("rtt must be non-negative")

    def transfer_time(self, nbytes: float, messages: int = 1) -> float:
        """Time to move ``nbytes`` in ``messages`` request/response exchanges."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if messages < 0:
            raise ValueError("messages must be non-negative")
        return nbytes / self.bandwidth + messages * self.rtt

    def exchange_time(self, send_bytes: float, recv_bytes: float) -> float:
        """Time for a full-duplex exchange; the link is limited by the larger
        direction (the PSIL all-to-all shuffles are symmetric in practice)."""
        return self.transfer_time(max(send_bytes, recv_bytes))
