"""DEBAR: a scalable high-performance de-duplication storage system for
backup and archiving — a faithful Python reproduction of Yang, Jiang, Feng
and Niu (IPDPS 2010 / UNL TR-UNL-CSE-2009-0004).

Quick tour
----------

File-mode backup and restore (the quickstart example)::

    from repro import DebarSystem

    system = DebarSystem()
    job = system.define_job("homedirs", client="host1", dataset=["/data/home"])
    run, stats = system.run_backup(job)
    system.run_dedup2()
    system.restore_run(run, "/restore/here")

Fingerprint-stream mode, multi-server (the paper's own evaluation style)::

    from repro import DebarCluster
    from repro.workloads import SyntheticUniverse

    cluster = DebarCluster(w_bits=4)       # 16 backup servers
    ...

Package map: :mod:`repro.core` (disk index, TPDS), :mod:`repro.chunking`
(Rabin/CDC), :mod:`repro.storage` (containers, repository, LPC),
:mod:`repro.simdisk` (calibrated device cost models), :mod:`repro.baselines`
(DDFS, Venti, Bloom), :mod:`repro.director` / :mod:`repro.client` /
:mod:`repro.server` (the Figure 2 tiers), :mod:`repro.system` (facades),
:mod:`repro.workloads` and :mod:`repro.analysis`.
"""

from repro.core import (
    DiskIndex,
    IndexFullError,
    IndexCache,
    PreliminaryFilter,
    SequentialIndexLookup,
    SequentialIndexUpdate,
    CheckingFile,
    TwoPhaseDeduplicator,
    SyntheticFingerprints,
    fingerprint,
)
from repro.chunking import ContentDefinedChunker, FixedSizeChunker, chunk_bytes
from repro.storage import (
    ChunkRepository,
    Container,
    ContainerManager,
    ChunkLog,
    LocalityPreservedCache,
)
from repro.baselines import BloomFilter, DdfsServer, VentiServer
from repro.director import Director, Dedup2Policy
from repro.client import BackupEngine
from repro.server import BackupServer, BackupServerConfig
from repro.system import DebarSystem, DebarCluster, DdfsSystem

__version__ = "0.1.0"

__all__ = [
    "DiskIndex",
    "IndexFullError",
    "IndexCache",
    "PreliminaryFilter",
    "SequentialIndexLookup",
    "SequentialIndexUpdate",
    "CheckingFile",
    "TwoPhaseDeduplicator",
    "SyntheticFingerprints",
    "fingerprint",
    "ContentDefinedChunker",
    "FixedSizeChunker",
    "chunk_bytes",
    "ChunkRepository",
    "Container",
    "ContainerManager",
    "ChunkLog",
    "LocalityPreservedCache",
    "BloomFilter",
    "DdfsServer",
    "VentiServer",
    "Director",
    "Dedup2Policy",
    "BackupEngine",
    "BackupServer",
    "BackupServerConfig",
    "DebarSystem",
    "DebarCluster",
    "DdfsSystem",
    "__version__",
]
