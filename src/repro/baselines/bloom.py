"""A Bloom filter: DDFS's in-memory summary vector (BLOOM70, Section 1).

The summary vector compactly represents the fingerprint set of the entire
system; a negative answer proves a chunk is new (no index lookup needed),
while a positive answer is only probably-right and must be confirmed by a
disk-index lookup.  The false-positive probability for an ``m``-bit filter
holding ``n`` keys with ``k`` hash functions is ``(1 - e^(-kn/m))^k``
(Section 6.1.3); its growth as ``m/n`` shrinks is exactly why DDFS's
capacity is bounded by memory, the limitation DEBAR removes.

Hashing: a fingerprint is already a 160-bit uniformly random value, so the
``k`` hash functions are ``k`` disjoint bit-slices of the fingerprint itself
— the standard trick for content-addressed keys.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from repro.core.fingerprint import FINGERPRINT_SIZE, Fingerprint


def bloom_false_positive_rate(m_bits: float, n_keys: float, k_hashes: int) -> float:
    """Theoretical false-positive probability ``(1 - e^(-kn/m))^k``."""
    if m_bits <= 0 or k_hashes < 1:
        raise ValueError("need a positive filter size and at least one hash")
    if n_keys < 0:
        raise ValueError("n_keys must be non-negative")
    if n_keys == 0:
        return 0.0
    return (1.0 - math.exp(-k_hashes * n_keys / m_bits)) ** k_hashes


def optimal_hash_count(m_bits: float, n_keys: float) -> int:
    """The ``k = (m/n) ln 2`` minimising the false-positive rate."""
    if m_bits <= 0 or n_keys <= 0:
        raise ValueError("sizes must be positive")
    return max(1, round(m_bits / n_keys * math.log(2)))


class BloomFilter:
    """A bit-array Bloom filter keyed by chunk fingerprints.

    Parameters
    ----------
    m_bits:
        Filter size in bits; must leave ``k * ceil(log2(m))`` bits available
        in a 160-bit fingerprint for slicing.
    k_hashes:
        Number of hash functions (DDFS's measured configuration uses 4).
    """

    def __init__(self, m_bits: int, k_hashes: int = 4) -> None:
        if m_bits < 2:
            raise ValueError("filter must have at least 2 bits")
        if k_hashes < 1:
            raise ValueError("need at least one hash function")
        self.m_bits = m_bits
        self.k_hashes = k_hashes
        self._index_bits = max(1, (m_bits - 1).bit_length())
        if k_hashes * self._index_bits > FINGERPRINT_SIZE * 8:
            raise ValueError(
                f"{k_hashes} hashes x {self._index_bits} bits exceed the "
                f"{FINGERPRINT_SIZE * 8}-bit fingerprint"
            )
        self._bits = np.zeros((m_bits + 7) // 8, dtype=np.uint8)
        self.n_keys = 0

    # -- hashing --------------------------------------------------------------
    def _positions(self, fp: Fingerprint) -> Iterable[int]:
        value = int.from_bytes(fp, "big")
        mask = (1 << self._index_bits) - 1
        for i in range(self.k_hashes):
            slice_value = (value >> (i * self._index_bits)) & mask
            yield slice_value % self.m_bits

    # -- filter operations ---------------------------------------------------------
    def add(self, fp: Fingerprint) -> None:
        """Insert a fingerprint."""
        for pos in self._positions(fp):
            self._bits[pos >> 3] |= 1 << (pos & 7)
        self.n_keys += 1

    def __contains__(self, fp: Fingerprint) -> bool:
        """Probably-present test: False is definitive, True is probabilistic."""
        for pos in self._positions(fp):
            if not self._bits[pos >> 3] & (1 << (pos & 7)):
                return False
        return True

    def add_many(self, fps: Iterable[Fingerprint]) -> None:
        for fp in fps:
            self.add(fp)

    # -- analysis ---------------------------------------------------------------------
    @property
    def load_ratio(self) -> float:
        """Bits per key, the ``m/n`` the paper sweeps in Figure 12."""
        return self.m_bits / self.n_keys if self.n_keys else float("inf")

    @property
    def expected_false_positive_rate(self) -> float:
        """Theoretical false-positive rate at the current load."""
        return bloom_false_positive_rate(self.m_bits, self.n_keys, self.k_hashes)

    @property
    def fill_fraction(self) -> float:
        """Fraction of bits set (diagnostic)."""
        return float(np.unpackbits(self._bits).sum()) / self.m_bits
