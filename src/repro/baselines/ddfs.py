"""A DDFS-style inline de-duplication server (ZHU08), per Section 6's
reimplementation.

The pipeline for each incoming chunk:

1. **LPC** — if the fingerprint is in the locality-preserved cache it is a
   duplicate, resolved with no I/O at all.
2. **Summary vector** — a Bloom-filter miss proves the chunk is new, with no
   I/O; a hit forces
3. **a random disk-index lookup** — if found, the owning container's whole
   fingerprint group is prefetched into the LPC (one more random read) and
   the chunk is a duplicate; if not found, the Bloom hit was a false
   positive and the chunk is new.

New chunks stream into SISL containers; their fingerprints enter the Bloom
filter immediately and queue in an in-memory **write buffer**.  When the
buffer fills, the server *pauses the backup* and flushes the buffer to the
disk index with a sequential merge (the SIU algorithm) — the inline
throughput dips Figure 9 shows.  Because fingerprints in the buffer are not
yet in the index, a recurrence that misses the LPC is stored twice: the
duplicated storing under asynchronous updates that DEBAR's checking file
eliminates (Section 5.4).

Every logical byte crosses the network (de-duplication is entirely
server-side), so DDFS throughput is capped by the NIC — the paper's
measured 210 MB/s.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.baselines.bloom import BloomFilter
from repro.core.disk_index import DiskIndex, IndexFullError
from repro.core.fingerprint import FINGERPRINT_SIZE, Fingerprint
from repro.core.siu import SequentialIndexUpdate
from repro.core.tpds import StreamChunk
from repro.simdisk import Meter, PaperRig, SimClock, paper_rig
from repro.storage.container import CONTAINER_SIZE, ContainerManager, ContainerWriter
from repro.storage.lpc import LocalityPreservedCache
from repro.storage.repository import ChunkRepository


@dataclass
class DdfsBackupStats:
    """Outcome of one DDFS backup session."""

    logical_bytes: int = 0
    logical_chunks: int = 0
    duplicate_chunks: int = 0
    new_chunks: int = 0
    new_bytes: int = 0
    duplicate_stores: int = 0  # chunks stored again due to async updates
    lpc_hits: int = 0
    bloom_negatives: int = 0
    index_lookups: int = 0
    false_positives: int = 0
    buffer_flushes: int = 0
    containers_written: int = 0
    elapsed: float = 0.0

    @property
    def compression_ratio(self) -> float:
        return self.logical_bytes / self.new_bytes if self.new_bytes else float("inf")

    @property
    def throughput(self) -> float:
        return self.logical_bytes / self.elapsed if self.elapsed else float("inf")


class DdfsServer:
    """A single-server DDFS with summary vector, LPC and write buffer.

    Parameters
    ----------
    index:
        The on-disk fingerprint index.
    repository:
        Container storage.
    bloom_bits / bloom_hashes:
        Summary-vector geometry (paper: 1 GB = 2^33 bits, k = 4).
    lpc_containers:
        LPC capacity in container fingerprint groups (paper: 128 MB).
    write_buffer_capacity:
        Fingerprints buffered before a pause-and-flush (paper: 256 MB).
    """

    def __init__(
        self,
        index: DiskIndex,
        repository: ChunkRepository,
        *,
        bloom_bits: int = 1 << 23,
        bloom_hashes: int = 4,
        lpc_containers: int = 16,
        write_buffer_capacity: int = 1 << 16,
        container_bytes: int = CONTAINER_SIZE,
        materialize: bool = False,
        rig: Optional[PaperRig] = None,
        clock: Optional[SimClock] = None,
    ) -> None:
        if write_buffer_capacity < 1:
            raise ValueError("write buffer must hold at least one fingerprint")
        self.index = index
        self.repository = repository
        self.bloom = BloomFilter(bloom_bits, bloom_hashes)
        self.lpc = LocalityPreservedCache(lpc_containers)
        self.write_buffer_capacity = write_buffer_capacity
        self.container_bytes = container_bytes
        self.materialize = materialize
        self.rig = rig if rig is not None else paper_rig()
        self.clock = clock if clock is not None else SimClock()
        self.meter = Meter(self.clock)
        self.container_manager = ContainerManager(repository)
        self._write_buffer: Dict[Fingerprint, int] = {}
        self._writer = ContainerWriter(container_bytes, materialize=materialize)
        self._open_fps: List[Fingerprint] = []
        self.capacity_scalings = 0
        self._flushes_this_session = 0

    # ------------------------------------------------------------------ backup
    def backup_stream(self, stream: Iterable[StreamChunk]) -> DdfsBackupStats:
        """Inline-deduplicate one backup stream."""
        t0 = self.clock.now
        stats = DdfsBackupStats()
        random_probes = 0
        prefetch_reads = 0

        for element in stream:
            fp, size = element[0], element[1]
            data = element[2] if len(element) > 2 else None
            stats.logical_chunks += 1
            stats.logical_bytes += size

            if self.lpc.lookup(fp) is not None:
                stats.lpc_hits += 1
                stats.duplicate_chunks += 1
                continue
            if fp not in self.bloom:
                stats.bloom_negatives += 1
                self._store_new(fp, size, data, stats)
                continue
            # Bloom positive: confirm with a random on-disk lookup.
            cid, probes = self.index.lookup_with_probes(fp)
            stats.index_lookups += 1
            random_probes += probes
            if cid is not None:
                container = self.container_manager.fetch(cid)
                self.lpc.insert_container(cid, container.fingerprints)
                prefetch_reads += 1
                stats.duplicate_chunks += 1
            else:
                stats.false_positives += 1
                if fp in self._write_buffer or any(
                    rec == fp for rec in self._open_fps
                ):
                    # Asynchronous-update window: already stored, index not
                    # yet flushed.  DDFS cannot tell and stores it again.
                    stats.duplicate_stores += 1
                self._store_new(fp, size, data, stats)
                continue

        # Charge the session: every logical byte over the NIC, container
        # appends overlapped with receiving, random index I/O on top.
        net = self.rig.network.transfer_time(
            stats.logical_bytes + stats.logical_chunks * FINGERPRINT_SIZE
        )
        container_write = self.rig.repository_disk.append_write_time(
            stats.containers_written * self.container_bytes
        )
        self.meter.charge("ddfs.pipeline", max(net, container_write))
        self.meter.record("ddfs.network", net)
        self.meter.charge(
            "ddfs.index_random",
            self.rig.index_disk.random_read_time(random_probes + prefetch_reads),
        )
        self.meter.charge("ddfs.cpu", self.rig.cpu.filter_probe_time(stats.logical_chunks))

        # Flushes triggered during the stream already charged themselves.
        stats.buffer_flushes = self._flushes_this_session
        self._flushes_this_session = 0
        stats.elapsed = self.clock.now - t0
        return stats

    def _store_new(self, fp: Fingerprint, size: int, data: Optional[bytes], stats: DdfsBackupStats) -> None:
        if not self._writer.fits(size):
            self._seal_container(stats)
        if not self._writer.add(fp, data=data, size=size):
            raise ValueError(f"chunk of {size} bytes cannot fit an empty container")
        self._open_fps.append(fp)
        self.bloom.add(fp)
        stats.new_chunks += 1
        stats.new_bytes += size

    def _seal_container(self, stats: Optional[DdfsBackupStats]) -> None:
        if not len(self._writer):
            return
        container = self.container_manager.store(self._writer)
        for fp in self._open_fps:
            self._buffer_update(fp, container.container_id)
        # DDFS inserts a freshly written container's fingerprint group into
        # the cache (stream-informed layout makes its neighbours likely to
        # recur), which is what catches within-stream duplicates inline.
        self.lpc.insert_container(container.container_id, container.fingerprints)
        self._open_fps.clear()
        self._writer = ContainerWriter(self.container_bytes, materialize=self.materialize)
        if stats is not None:
            stats.containers_written += 1

    def _buffer_update(self, fp: Fingerprint, cid: int) -> None:
        self._write_buffer[fp] = cid
        if len(self._write_buffer) >= self.write_buffer_capacity:
            self.flush_write_buffer()

    def flush_write_buffer(self) -> None:
        """Pause and merge the write buffer into the disk index (SIU-style)."""
        if not self._write_buffer:
            return
        entries = dict(self._write_buffer)
        while True:
            try:
                SequentialIndexUpdate(self.index).run(
                    entries,
                    meter=self.meter,
                    disk=self.rig.index_disk,
                    cpu=self.rig.cpu,
                    category="ddfs.siu",
                )
                break
            except IndexFullError:
                # DDFS has no cheap capacity scaling; rebuilding in place is
                # modeled the same way as DEBAR's for comparability.
                self.index = self.index.scale_capacity()
                self.capacity_scalings += 1
                entries = {
                    fp: cid for fp, cid in entries.items() if self.index.lookup(fp) is None
                }
        self._write_buffer.clear()
        self._flushes_this_session += 1

    def finish_backup(self) -> None:
        """Seal the open container and flush the buffer (end of a session)."""
        if len(self._writer):
            self.meter.charge(
                "ddfs.container_tail",
                self.rig.repository_disk.append_write_time(self.container_bytes),
            )
        self._seal_container(None)
        self.flush_write_buffer()

    # ------------------------------------------------------------------ restore
    def read_chunk(self, fp: Fingerprint) -> bytes:
        """Restore-path chunk read via LPC (Section 3.3's retrieval flow)."""
        cid = self.lpc.lookup(fp)
        if cid is None:
            cid, probes = self.index.lookup_with_probes(fp)
            if cid is None:
                raise KeyError(f"fingerprint {fp.hex()[:12]} not stored")
            self.meter.charge(
                "restore.index_random", self.rig.index_disk.random_read_time(probes)
            )
            container = self.container_manager.fetch(cid)
            self.lpc.insert_container(cid, container.fingerprints)
            self.meter.charge(
                "restore.container_read",
                self.rig.repository_disk.seq_read_time(container.capacity),
            )
        container = self.container_manager.fetch(cid)
        return container.get(fp)
