"""Baseline systems the paper compares DEBAR against: DDFS and random-index
(Venti-style) de-duplication."""

from repro.baselines.bloom import BloomFilter, bloom_false_positive_rate, optimal_hash_count
from repro.baselines.ddfs import DdfsServer, DdfsBackupStats
from repro.baselines.venti import VentiServer, VentiStats

__all__ = [
    "BloomFilter",
    "bloom_false_positive_rate",
    "optimal_hash_count",
    "DdfsServer",
    "DdfsBackupStats",
    "VentiServer",
    "VentiStats",
]
