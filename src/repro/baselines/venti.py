"""A Venti-style random-index de-duplication server (QUINLAN02).

The traditional scheme DEBAR's Figures 11 and 12 quote as "random lookup /
random update": every incoming fingerprint costs one random disk-index
probe, and every new fingerprint costs a random read-modify-write to insert
its entry.  One disk I/O handles one fingerprint, so throughput is pinned
to the index disk's random IOPS — a few hundred fingerprints (a few MB of
8 KB chunks) per second, the bottleneck the whole literature is escaping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.core.disk_index import DiskIndex, IndexFullError
from repro.core.fingerprint import FINGERPRINT_SIZE, Fingerprint
from repro.core.tpds import StreamChunk
from repro.simdisk import Meter, PaperRig, SimClock, paper_rig
from repro.storage.container import CONTAINER_SIZE, ContainerManager, ContainerWriter
from repro.storage.repository import ChunkRepository


@dataclass
class VentiStats:
    """Outcome of one Venti-style backup session."""

    logical_bytes: int = 0
    logical_chunks: int = 0
    duplicate_chunks: int = 0
    new_chunks: int = 0
    new_bytes: int = 0
    lookup_probes: int = 0
    update_probes: int = 0
    elapsed: float = 0.0

    @property
    def throughput(self) -> float:
        return self.logical_bytes / self.elapsed if self.elapsed else float("inf")

    @property
    def fingerprints_per_second(self) -> float:
        return self.logical_chunks / self.elapsed if self.elapsed else float("inf")


class VentiServer:
    """Inline de-duplication with per-fingerprint random index I/O."""

    def __init__(
        self,
        index: DiskIndex,
        repository: ChunkRepository,
        *,
        container_bytes: int = CONTAINER_SIZE,
        materialize: bool = False,
        rig: Optional[PaperRig] = None,
        clock: Optional[SimClock] = None,
    ) -> None:
        self.index = index
        self.repository = repository
        self.container_bytes = container_bytes
        self.materialize = materialize
        self.rig = rig if rig is not None else paper_rig()
        self.clock = clock if clock is not None else SimClock()
        self.meter = Meter(self.clock)
        self.container_manager = ContainerManager(repository)
        self.capacity_scalings = 0

    def backup_stream(self, stream: Iterable[StreamChunk]) -> VentiStats:
        """Deduplicate one stream with random per-fingerprint index I/O."""
        t0 = self.clock.now
        stats = VentiStats()
        writer = ContainerWriter(self.container_bytes, materialize=self.materialize)
        open_fps = []
        containers = 0

        def seal() -> None:
            nonlocal writer, containers
            if not len(writer):
                return
            container = self.container_manager.store(writer)
            for fp in open_fps:
                self._insert(fp, container.container_id, stats)
            open_fps.clear()
            containers += 1
            writer = ContainerWriter(self.container_bytes, materialize=self.materialize)

        for element in stream:
            fp, size = element[0], element[1]
            data = element[2] if len(element) > 2 else None
            stats.logical_chunks += 1
            stats.logical_bytes += size
            cid, probes = self.index.lookup_with_probes(fp)
            stats.lookup_probes += probes
            if cid is not None or fp in open_fps:
                stats.duplicate_chunks += 1
                continue
            if not writer.fits(size):
                seal()
            writer.add(fp, data=data, size=size)
            open_fps.append(fp)
            stats.new_chunks += 1
            stats.new_bytes += size
        seal()

        net = self.rig.network.transfer_time(
            stats.logical_bytes + stats.logical_chunks * FINGERPRINT_SIZE
        )
        disk_random = self.rig.index_disk.random_read_time(
            stats.lookup_probes
        ) + self.rig.index_disk.random_write_time(stats.update_probes)
        container_write = self.rig.repository_disk.append_write_time(
            containers * self.container_bytes
        )
        # Random index I/O is the bottleneck and cannot overlap with itself;
        # the network and container streams hide underneath it in practice,
        # so total time is the max of the three plus nothing clever.
        self.meter.charge("venti.pipeline", max(net, disk_random, container_write))
        self.meter.record("venti.index_random", disk_random)
        stats.elapsed = self.clock.now - t0
        return stats

    def _insert(self, fp: Fingerprint, cid: int, stats: VentiStats) -> None:
        # A random insert is a read-modify-write of the home bucket.
        stats.update_probes += 2
        while True:
            try:
                self.index.insert(fp, cid)
                return
            except IndexFullError:
                self.index = self.index.scale_capacity()
                self.capacity_scalings += 1
