"""The Backup Engine running on client machines (Section 3.2).

To back up a file it performs, in order: *metadata backup* (file attributes
to the server), *anchoring* (CDC division into variable-sized chunks),
*chunk fingerprinting* (SHA-1 per chunk) and *content backup* (fingerprints
checked against the server's preliminary filter; only chunks the filter
admits are transferred).  To restore, it retrieves metadata and chunks from
the server and rebuilds files in a designated directory.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.chunking.cdc import Chunk, ContentDefinedChunker
from repro.director.metadata import FileIndexEntry, FileMetadata
from repro.server.chunk_store import ChunkStore
from repro.telemetry.registry import MetricsRegistry, get_registry

PathLike = Union[str, Path]


class BackupEngine:
    """Reads a job dataset, chunks and fingerprints it, and moves content."""

    def __init__(
        self,
        client_name: str,
        chunker: Optional[ContentDefinedChunker] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if not client_name:
            raise ValueError("client needs a name")
        self.client_name = client_name
        self.chunker = chunker if chunker is not None else ContentDefinedChunker()
        registry = registry if registry is not None else get_registry()
        label = {"client": client_name}
        self._t_files = registry.counter(
            "client.files_read", "files read and chunked by the backup engine"
        ).labels(**label)
        self._t_bytes = registry.counter(
            "client.bytes_read", "bytes read from dataset files"
        ).labels(**label)
        self._t_chunks = registry.counter(
            "client.chunks", "chunks produced by anchoring + fingerprinting"
        ).labels(**label)
        self._t_restored_files = registry.counter(
            "client.files_restored", "files rebuilt from the chunk store"
        ).labels(**label)
        self._t_restored_bytes = registry.counter(
            "client.bytes_restored", "bytes written while rebuilding files"
        ).labels(**label)

    # -- backup side -------------------------------------------------------------
    def scan_dataset(self, dataset: Sequence[PathLike]) -> List[Path]:
        """Expand the job's dataset attribute into the list of files to read."""
        files: List[Path] = []
        for item in dataset:
            path = Path(item)
            if path.is_dir():
                files.extend(sorted(p for p in path.rglob("*") if p.is_file()))
            elif path.is_file():
                files.append(path)
            else:
                raise FileNotFoundError(f"dataset item {path} does not exist")
        return files

    def read_file(self, path: PathLike) -> Tuple[FileMetadata, List[Chunk]]:
        """Anchoring + fingerprinting of one file."""
        path = Path(path)
        stat = path.stat()
        metadata = FileMetadata(
            path=str(path), size=stat.st_size, mode=stat.st_mode & 0o7777, mtime=stat.st_mtime
        )
        data = path.read_bytes()
        chunks = list(self.chunker.chunks(data))
        self._t_files.inc()
        self._t_bytes.inc(len(data))
        self._t_chunks.inc(len(chunks))
        return metadata, chunks

    def iter_dataset(
        self, dataset: Sequence[PathLike]
    ) -> Iterator[Tuple[FileMetadata, List[Chunk]]]:
        """The full backup stream for a dataset, file by file."""
        for path in self.scan_dataset(dataset):
            yield self.read_file(path)

    # -- restore side ----------------------------------------------------------------
    def restore_file(
        self,
        entry: FileIndexEntry,
        chunk_store: ChunkStore,
        dest_dir: PathLike,
        strip_prefix: PathLike = "/",
    ) -> Path:
        """Rebuild one file from its file index into ``dest_dir``."""
        dest_dir = Path(dest_dir)
        rel = Path(entry.metadata.path)
        try:
            rel = rel.relative_to(strip_prefix)
        except ValueError:
            rel = Path(str(rel).lstrip("/"))
        target = dest_dir / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        with open(target, "wb") as fh:
            for fp in entry.fingerprints:
                fh.write(chunk_store.read_chunk(fp))
        os.chmod(target, entry.metadata.mode)
        restored_size = target.stat().st_size
        self._t_restored_files.inc()
        self._t_restored_bytes.inc(restored_size)
        if restored_size != entry.metadata.size:
            raise IOError(
                f"restore of {entry.metadata.path} produced {restored_size} bytes, "
                f"expected {entry.metadata.size}"
            )
        return target

    def restore_run(
        self,
        entries: Iterable[FileIndexEntry],
        chunk_store: ChunkStore,
        dest_dir: PathLike,
        strip_prefix: PathLike = "/",
    ) -> List[Path]:
        """Restore every file of a job run."""
        return [
            self.restore_file(entry, chunk_store, dest_dir, strip_prefix)
            for entry in entries
        ]
