"""Backup clients: the Backup Engine (anchoring, fingerprinting, transfer)."""

from repro.client.backup_client import BackupEngine

__all__ = ["BackupEngine"]
