"""System facades: single-server DEBAR, the multi-server cluster, and DDFS."""

from repro.system.debar import DebarSystem
from repro.system.cluster import DebarCluster, ClusterDedup2Stats, ClusterBackupStats
from repro.system.ddfs_system import DdfsSystem
from repro.system.vault import DebarVault, VaultError, VaultRun

__all__ = [
    "DebarSystem",
    "DebarCluster",
    "ClusterDedup2Stats",
    "ClusterBackupStats",
    "DdfsSystem",
    "DebarVault",
    "VaultError",
    "VaultRun",
]
