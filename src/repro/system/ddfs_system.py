"""A DDFS deployment facade, mirroring :class:`DebarSystem` for comparisons.

DDFS is inherently single-server (Figure 1(b)): one backup server performs
inline de-duplication for all clients, with no director tier.  This facade
exists so the Figure 6-9 and Figure 12 benchmarks can drive DEBAR and DDFS
with identical workloads and read identical accounting.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.baselines.ddfs import DdfsBackupStats, DdfsServer
from repro.core.disk_index import DiskIndex
from repro.core.tpds import StreamChunk
from repro.simdisk import PaperRig
from repro.storage.container import CONTAINER_SIZE
from repro.storage.repository import ChunkRepository


class DdfsSystem:
    """One DDFS backup server plus its container storage."""

    def __init__(
        self,
        index_n_bits: int = 16,
        index_bucket_bytes: int = 8 * 1024,
        bloom_bits: int = 1 << 23,
        bloom_hashes: int = 4,
        lpc_containers: int = 16,
        write_buffer_capacity: int = 1 << 16,
        container_bytes: int = CONTAINER_SIZE,
        materialize: bool = False,
        rig: Optional[PaperRig] = None,
    ) -> None:
        self.repository = ChunkRepository(1)
        index = DiskIndex(index_n_bits, bucket_bytes=index_bucket_bytes)
        self.server = DdfsServer(
            index,
            self.repository,
            bloom_bits=bloom_bits,
            bloom_hashes=bloom_hashes,
            lpc_containers=lpc_containers,
            write_buffer_capacity=write_buffer_capacity,
            container_bytes=container_bytes,
            materialize=materialize,
            rig=rig,
        )
        self._logical_bytes = 0

    def backup_stream(self, stream: Iterable[StreamChunk]) -> DdfsBackupStats:
        """Inline-deduplicate one backup session."""
        stats = self.server.backup_stream(stream)
        self.server.finish_backup()
        self._logical_bytes += stats.logical_bytes
        return stats

    @property
    def logical_bytes_protected(self) -> int:
        return self._logical_bytes

    @property
    def physical_bytes_stored(self) -> int:
        return self.repository.stored_chunk_bytes

    @property
    def compression_ratio(self) -> float:
        physical = self.physical_bytes_stored
        return self._logical_bytes / physical if physical else float("inf")

    @property
    def elapsed(self) -> float:
        return self.server.clock.now
