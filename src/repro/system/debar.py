"""Single-server DEBAR: the whole Figure 2 stack behind one facade.

Two usage styles:

* **File mode** — back up real directories with CDC chunking and restore
  them byte-identical (the quickstart example).
* **Fingerprint-stream mode** — drive the de-duplication machinery with
  workload-model streams of (fingerprint, size) pairs, the way the paper's
  own evaluation does (Section 6.2), with payloads virtualized.

Both styles share the director (job chains, metadata, dedup-2 policy) and
the backup server (TPDS, containers, LPC).
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.client.backup_client import BackupEngine
from repro.core.tpds import Dedup1Stats, Dedup2Stats, StreamChunk
from repro.director.director import Director
from repro.director.jobs import JobObject, JobRun
from repro.director.scheduler import Dedup2Policy
from repro.server.backup_server import BackupServer, BackupServerConfig
from repro.simdisk import PaperRig
from repro.storage.repository import ChunkRepository


class DebarSystem:
    """A director + one backup server + a chunk repository."""

    def __init__(
        self,
        config: Optional[BackupServerConfig] = None,
        policy: Optional[Dedup2Policy] = None,
        rig: Optional[PaperRig] = None,
        repository_nodes: int = 1,
    ) -> None:
        self.repository = ChunkRepository(repository_nodes)
        self.config = config if config is not None else BackupServerConfig()
        if policy is None:
            policy = Dedup2Policy(undetermined_threshold=self.config.cache_capacity)
        self.director = Director(n_servers=1, policy=policy)
        self.server = BackupServer(0, self.repository, config=self.config, rig=rig)
        self._engines = {}

    # -- job management --------------------------------------------------------
    def define_job(
        self,
        name: str,
        client: str,
        dataset: Sequence[Union[str, Path]] = (),
        schedule: str = "daily at 1.05am",
    ) -> JobObject:
        """Register a backup job object with the director."""
        return self.director.define_job(name, client, [str(p) for p in dataset], schedule)

    def _engine(self, client: str) -> BackupEngine:
        if client not in self._engines:
            self._engines[client] = BackupEngine(client)
        return self._engines[client]

    # -- backup -------------------------------------------------------------------
    def run_backup(self, job: JobObject, timestamp: float = 0.0) -> Tuple[JobRun, Dedup1Stats]:
        """Execute one file-mode run of a job: read, chunk, dedup-1.

        The preliminary filter is seeded with the previous run of the job
        chain, exactly per Section 5.1.
        """
        server_id = self.director.assign_backup(job)
        run = self.director.begin_run(job, timestamp, server_id)
        engine = self._engine(job.client)
        filtering = self.director.filtering_fingerprints(job)
        session = self.server.file_store.begin_session(filtering)
        for metadata, chunks in engine.iter_dataset(job.dataset):
            session.add_file(metadata, chunks)
        stats, entries = session.close()
        run.logical_bytes = stats.logical_bytes
        run.transferred_bytes = stats.transferred_bytes
        run.chunk_count = stats.logical_chunks
        self.director.complete_run(run, entries)
        self._maybe_dedup2()
        return run, stats

    def backup_stream(
        self,
        job: JobObject,
        stream: Iterable[StreamChunk],
        timestamp: float = 0.0,
        label: str = "<stream>",
        auto_dedup2: bool = True,
    ) -> Tuple[JobRun, Dedup1Stats]:
        """Execute one fingerprint-stream run of a job (workload models)."""
        server_id = self.director.assign_backup(job)
        run = self.director.begin_run(job, timestamp, server_id)
        filtering = self.director.filtering_fingerprints(job)
        session = self.server.file_store.begin_session(filtering)
        session.add_fingerprint_stream(stream, path=label)
        stats, entries = session.close()
        run.logical_bytes = stats.logical_bytes
        run.transferred_bytes = stats.transferred_bytes
        run.chunk_count = stats.logical_chunks
        self.director.complete_run(run, entries)
        if auto_dedup2:
            self._maybe_dedup2()
        return run, stats

    def _maybe_dedup2(self) -> None:
        if self.director.should_run_dedup2(
            [self.server.undetermined_count], [self.server.chunk_log_bytes]
        ):
            self.run_dedup2()

    # -- dedup-2 ----------------------------------------------------------------------
    def run_dedup2(self, force_siu: Optional[bool] = None) -> Dedup2Stats:
        """Director-initiated dedup-2 on the backup server."""
        stats = self.server.chunk_store.run_dedup2(force_siu=force_siu)
        self.director.record_dedup2()
        return stats

    # -- restore ---------------------------------------------------------------------
    def restore_run(
        self,
        run: JobRun,
        dest_dir: Union[str, Path],
        strip_prefix: Union[str, Path] = "/",
    ) -> List[Path]:
        """Restore every file of a run into ``dest_dir`` (file mode)."""
        entries = self.director.metadata.files_for_run(run.run_id)
        engine = self._engine(run.job.client)
        return engine.restore_run(entries, self.server.chunk_store, dest_dir, strip_prefix)

    def restore_fingerprints(self, run: JobRun) -> List[bytes]:
        """Fetch every chunk of a stream-mode run (returns payload bytes)."""
        entries = self.director.metadata.files_for_run(run.run_id)
        out: List[bytes] = []
        for entry in entries:
            for fp in entry.fingerprints:
                out.append(self.server.chunk_store.read_chunk(fp))
        return out

    def verify_run(self, run: JobRun, deep: bool = True) -> dict:
        """The director's *verify* operation (Section 3.1).

        Confirms every chunk a run references is resolvable; with ``deep``
        (and materialized payloads) each chunk is re-read and its SHA-1
        recomputed against the file index's fingerprint, so any container
        corruption surfaces.  Raises
        :class:`~repro.durability.errors.CorruptionError` on the first
        inconsistency; returns counters otherwise.
        """
        from repro.core.fingerprint import fingerprint as sha1
        from repro.durability.errors import CorruptionError

        checked = deep_checked = 0
        for entry in self.director.metadata.files_for_run(run.run_id):
            for fp in entry.fingerprints:
                try:
                    payload = self.server.chunk_store.read_chunk(fp)
                except KeyError as exc:
                    # A recorded run referencing an unresolvable chunk is
                    # corruption, not a mere lookup miss.
                    raise CorruptionError(
                        f"chunk {fp.hex()[:12]} of {entry.metadata.path} "
                        "is unresolvable",
                        fingerprint=fp,
                    ) from exc
                checked += 1
                if deep and self.config.materialize:
                    if sha1(payload) != fp:
                        raise CorruptionError(
                            f"chunk {fp.hex()[:12]} of {entry.metadata.path} "
                            "does not match its fingerprint",
                            fingerprint=fp,
                        )
                    deep_checked += 1
        return {"chunks": checked, "payloads_verified": deep_checked}

    def audit(self, deep: bool = False):
        """Full consistency sweep: index invariants, index <-> repository
        cross-references and restorability of every recorded run
        (see :mod:`repro.audit`)."""
        from repro.audit import audit_system

        return audit_system(self, deep=deep)

    # -- accounting ---------------------------------------------------------------------
    @property
    def logical_bytes_protected(self) -> int:
        """Total logical bytes across all completed runs."""
        total = 0
        for chain in self.director._chains.values():
            total += sum(r.logical_bytes for r in chain.runs)
        return total

    @property
    def physical_bytes_stored(self) -> int:
        """Payload bytes stored in the repository (post both dedup phases)."""
        return self.repository.stored_chunk_bytes

    @property
    def compression_ratio(self) -> float:
        """Cumulative logical : physical compression."""
        physical = self.physical_bytes_stored
        return self.logical_bytes_protected / physical if physical else float("inf")

    @property
    def elapsed(self) -> float:
        """Simulated seconds of backup-server work so far."""
        return self.server.clock.now
