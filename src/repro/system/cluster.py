"""Multi-server DEBAR: PSIL and PSIU across ``2^w`` backup servers
(Sections 2, 5.2 and Figure 5).

The disk index is divided into ``2^w`` parts by fingerprint prefix, one per
backup server.  A cluster dedup-2 proceeds in barriered phases:

1. **Partition & exchange** — every server splits its undetermined
   fingerprints by their first ``w`` bits and the servers all-to-all
   exchange subsets, so server ``k`` ends up with exactly the fingerprints
   its index part owns.
2. **PSIL** — all servers run SIL on their local parts concurrently.  The
   owner also arbitrates cross-stream duplicates *within* the round: when
   several servers submit the same new fingerprint, exactly one (the lowest
   requester) is assigned to store the chunk; the rest discard their
   copies.  Results are exchanged back.
3. **Chunk storing** — each server replays its own chunk log, packing the
   chunks it was assigned into containers placed with its affinity, then
   routes the resulting (fingerprint, container ID) pairs to the owning
   servers, whose checking files absorb them.
4. **PSIU** (per the asynchronous-SIU policy) — all owners merge their
   unregistered entries into their index parts concurrently.

Each server has its own simulated clock lane; a barrier after each phase
synchronises lanes to the slowest server, and phase wall time is the lane
delta across the barrier — which is how aggregate PSIL/PSIU speeds
(Figure 13) and cluster write/read throughputs (Figures 14-15) are defined.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.fingerprint import FINGERPRINT_SIZE, Fingerprint
from repro.core.sil import SequentialIndexLookup
from repro.core.tpds import Dedup1Stats, StreamChunk
from repro.director.director import Director  # noqa: F401 (used by scale_out)
from repro.director.jobs import JobObject
from repro.director.scheduler import Dedup2Policy
from repro.server.backup_server import BackupServer, BackupServerConfig
from repro.simdisk import NetworkModel, paper_network
from repro.simdisk.clock import barrier
from repro.telemetry.registry import MetricsRegistry, get_registry
from repro.telemetry.tracing import trace_span
from repro.util import bit_prefix
from repro.storage.repository import ChunkRepository

#: Wire size of one (fingerprint, container ID) result record.
_RESULT_RECORD = FINGERPRINT_SIZE + 5


class _LaneClock:
    """Presents the cluster's latest lane as a single ``.now`` clock, so
    phase spans report cluster wall time (the barrier semantics)."""

    __slots__ = ("_lanes",)

    def __init__(self, lanes) -> None:
        self._lanes = lanes

    @property
    def now(self) -> float:
        return max(lane.now for lane in self._lanes)


@dataclass
class ClusterBackupStats:
    """One round of parallel dedup-1 across the cluster."""

    logical_bytes: int = 0
    transferred_bytes: int = 0
    logical_chunks: int = 0
    wall_time: float = 0.0
    per_server: List[Dedup1Stats] = field(default_factory=list)

    @property
    def aggregate_throughput(self) -> float:
        """Logical bytes over the slowest server's elapsed time."""
        return self.logical_bytes / self.wall_time if self.wall_time else float("inf")


@dataclass
class ClusterDedup2Stats:
    """One cluster-wide dedup-2: PSIL + chunk storing + (optional) PSIU."""

    fingerprints_looked_up: int = 0
    fingerprints_updated: int = 0
    new_chunks_stored: int = 0
    duplicate_chunks: int = 0
    log_bytes_processed: int = 0
    new_bytes_stored: int = 0
    containers_written: int = 0
    exchange_bytes: int = 0
    psil_wall_time: float = 0.0
    storing_wall_time: float = 0.0
    psiu_wall_time: float = 0.0
    wall_time: float = 0.0
    psiu_performed: bool = False

    @property
    def psil_speed(self) -> float:
        """Aggregate PSIL fingerprints per second (Figure 13's metric)."""
        return self.fingerprints_looked_up / self.psil_wall_time if self.psil_wall_time else float("inf")

    @property
    def psiu_speed(self) -> float:
        """Aggregate PSIU fingerprints per second (Figure 13's metric)."""
        return self.fingerprints_updated / self.psiu_wall_time if self.psiu_wall_time else float("inf")


class _ClusterChunkReader:
    """Adapts the cluster read path to the BackupEngine's restore interface
    (which expects a ChunkStore-like ``read_chunk``)."""

    def __init__(self, cluster: "DebarCluster", via_server: int) -> None:
        self._cluster = cluster
        self._via = via_server

    def read_chunk(self, fp: Fingerprint) -> bytes:
        return self._cluster.read_chunk(fp, via_server=self._via)


class DebarCluster:
    """A director plus ``2^w`` backup servers over a shared chunk repository."""

    def __init__(
        self,
        w_bits: int,
        config: Optional[BackupServerConfig] = None,
        policy: Optional[Dedup2Policy] = None,
        network: Optional[NetworkModel] = None,
        repository_nodes: Optional[int] = None,
        n_directors: int = 1,
        telemetry: Optional[MetricsRegistry] = None,
        wire_exchange: bool = False,
    ) -> None:
        if w_bits < 0:
            raise ValueError("w_bits must be non-negative")
        self.w_bits = w_bits
        self.n_servers = 1 << w_bits
        self.config = config if config is not None else BackupServerConfig()
        if self.w_bits and self.config.index_n_bits < 1:
            raise ValueError("index parts need at least one bucket bit")
        self.network = network if network is not None else paper_network()
        self.repository = ChunkRepository(
            repository_nodes if repository_nodes is not None else self.n_servers
        )
        if policy is None:
            policy = Dedup2Policy(undetermined_threshold=self.config.cache_capacity)
        if n_directors > 1:
            # Section 6.3's future-work topology: jobs sharded over a
            # director ensemble presenting the single-director interface.
            from repro.director.ensemble import DirectorEnsemble

            self.director = DirectorEnsemble(
                n_directors, n_servers=self.n_servers, policy=policy
            )
        else:
            self.director = Director(n_servers=self.n_servers, policy=policy)
        self.servers = [
            BackupServer(k, self.repository, config=self.config, w_bits=w_bits)
            for k in range(self.n_servers)
        ]
        self._rounds_since_psiu = 0
        #: Route PSIL/PSIU exchanges through loopback sockets (repro.net):
        #: volumes are then *measured* on a real wire, not just computed.
        self.wire_exchange = wire_exchange
        self._wire = None
        self._bind_instruments(telemetry)

    def _wire_transport(self):
        """The loopback exchange transport (created on first use)."""
        if self._wire is None:
            from repro.net.exchange import LoopbackExchange

            self._wire = LoopbackExchange(self.n_servers, registry=self.telemetry)
        return self._wire

    def close(self) -> None:
        """Release the loopback exchange transport, if one was opened."""
        if self._wire is not None:
            self._wire.close()
            self._wire = None

    def _bind_instruments(self, registry: Optional[MetricsRegistry]) -> None:
        """Bind per-server exchange/phase counters (no-ops when disabled)."""
        self.telemetry = registry if registry is not None else get_registry()
        sent = self.telemetry.counter(
            "cluster.exchange.bytes_sent",
            "fingerprint-exchange bytes sent, per backup server",
        )
        received = self.telemetry.counter(
            "cluster.exchange.bytes_received",
            "fingerprint-exchange bytes received, per backup server",
        )
        self._t_sent = [sent.labels(server=str(k)) for k in range(self.n_servers)]
        self._t_received = [
            received.labels(server=str(k)) for k in range(self.n_servers)
        ]
        self._t_psil_fps = self.telemetry.counter(
            "cluster.psil.fingerprints", "fingerprints looked up by PSIL rounds"
        ).labels()
        self._t_psiu_fps = self.telemetry.counter(
            "cluster.psiu.fingerprints", "fingerprints registered by PSIU rounds"
        ).labels()
        self._t_rounds = self.telemetry.counter(
            "cluster.dedup2.rounds", "cluster-wide dedup-2 rounds completed"
        ).labels()

    # -- routing helpers ----------------------------------------------------------
    def owner_of(self, fp: Fingerprint) -> int:
        """The server whose index part owns a fingerprint (first w bits)."""
        if self.w_bits == 0:
            return 0
        return bit_prefix(fp, self.w_bits)

    def _lanes(self):
        return [s.clock for s in self.servers]

    # ------------------------------------------------------------------ dedup-1
    def backup_streams(
        self,
        assignments: Sequence[Tuple[JobObject, Iterable[StreamChunk]]],
        timestamp: float = 0.0,
    ) -> ClusterBackupStats:
        """Run one round of parallel dedup-1.

        Each (job, stream) pair is routed to the job's (sticky,
        load-balanced) backup server; servers work on their own clock lanes
        and a barrier closes the round.
        """
        stats = ClusterBackupStats()
        t0 = max(lane.now for lane in self._lanes())
        for job, stream in assignments:
            server_id = self.director.assign_backup(job)
            server = self.servers[server_id]
            run = self.director.begin_run(job, timestamp, server_id)
            filtering = self.director.filtering_fingerprints(job)
            session = server.file_store.begin_session(filtering)
            session.add_fingerprint_stream(stream, path=f"{job.name}@{timestamp}")
            d1, entries = session.close()
            run.logical_bytes = d1.logical_bytes
            run.transferred_bytes = d1.transferred_bytes
            run.chunk_count = d1.logical_chunks
            self.director.complete_run(run, entries)
            stats.per_server.append(d1)
            stats.logical_bytes += d1.logical_bytes
            stats.transferred_bytes += d1.transferred_bytes
            stats.logical_chunks += d1.logical_chunks
        barrier(self._lanes())
        stats.wall_time = max(lane.now for lane in self._lanes()) - t0
        return stats

    def backup_datasets(
        self,
        jobs: Sequence[JobObject],
        timestamp: float = 0.0,
    ) -> ClusterBackupStats:
        """File-mode parallel dedup-1: read each job's dataset from disk.

        Each job's client engine chunks its files with CDC; sessions run on
        the jobs' (sticky) backup servers.  Requires
        ``config.materialize=True`` so payloads are stored for restore.
        """
        stats = ClusterBackupStats()
        t0 = max(lane.now for lane in self._lanes())
        for job in jobs:
            engine = self._engine(job.client)
            server_id = self.director.assign_backup(job)
            server = self.servers[server_id]
            run = self.director.begin_run(job, timestamp, server_id)
            filtering = self.director.filtering_fingerprints(job)
            session = server.file_store.begin_session(filtering)
            for metadata, chunks in engine.iter_dataset(job.dataset):
                session.add_file(metadata, chunks)
            d1, entries = session.close()
            run.logical_bytes = d1.logical_bytes
            run.transferred_bytes = d1.transferred_bytes
            run.chunk_count = d1.logical_chunks
            self.director.complete_run(run, entries)
            stats.per_server.append(d1)
            stats.logical_bytes += d1.logical_bytes
            stats.transferred_bytes += d1.transferred_bytes
            stats.logical_chunks += d1.logical_chunks
        barrier(self._lanes())
        stats.wall_time = max(lane.now for lane in self._lanes()) - t0
        return stats

    def restore_run_files(self, run_id: int, dest_dir, strip_prefix="/"):
        """File-mode restore of a run into ``dest_dir`` (materialized data)."""
        run = self.director.find_run(run_id)
        if run is None:
            raise KeyError(f"no run {run_id} recorded")
        engine = self._engine(run.job.client)
        entries = self.director.metadata.files_for_run(run_id)
        via = run.server or 0
        reader = _ClusterChunkReader(self, via)
        return engine.restore_run(entries, reader, dest_dir, strip_prefix)

    def _engine(self, client: str):
        from repro.client.backup_client import BackupEngine

        if not hasattr(self, "_engines"):
            self._engines = {}
        if client not in self._engines:
            self._engines[client] = BackupEngine(client)
        return self._engines[client]

    def should_run_dedup2(self) -> bool:
        """The director's trigger over per-server backlogs."""
        return self.director.should_run_dedup2(
            [s.undetermined_count for s in self.servers],
            [s.chunk_log_bytes for s in self.servers],
        )

    # ------------------------------------------------------------------ dedup-2
    def run_dedup2(self, force_psiu: Optional[bool] = None) -> ClusterDedup2Stats:
        """One cluster-wide dedup-2 (the barriered phases described above)."""
        stats = ClusterDedup2Stats()
        lanes = self._lanes()
        lane_clock = _LaneClock(lanes)
        round_t0 = barrier(lanes)
        with trace_span(
            "cluster.dedup2", sim_clock=lane_clock, servers=self.n_servers
        ) as round_span:
            stats = self._run_dedup2_phases(stats, lanes, lane_clock, force_psiu)
            round_span.annotate(
                psil_fingerprints=stats.fingerprints_looked_up,
                psiu_fingerprints=stats.fingerprints_updated,
                exchange_bytes=stats.exchange_bytes,
            )
        stats.wall_time = max(lane.now for lane in lanes) - round_t0
        self._t_rounds.inc()
        self._t_psil_fps.inc(stats.fingerprints_looked_up)
        self._t_psiu_fps.inc(stats.fingerprints_updated)
        self.director.record_dedup2()
        return stats

    def _run_dedup2_phases(
        self,
        stats: ClusterDedup2Stats,
        lanes,
        lane_clock: "_LaneClock",
        force_psiu: Optional[bool],
    ) -> ClusterDedup2Stats:
        """The four barriered phases of one cluster-wide dedup-2."""
        # -- Phase 1: partition undetermined fingerprints and exchange.
        with trace_span("cluster.exchange.partition", sim_clock=lane_clock):
            outgoing: List[Dict[int, List[Fingerprint]]] = []
            for server in self.servers:
                parts: Dict[int, List[Fingerprint]] = defaultdict(list)
                for fp in server.tpds.drain_undetermined():
                    parts[self.owner_of(fp)].append(fp)
                outgoing.append(parts)
            self._charge_exchange(
                stats,
                sent=[
                    sum(len(v) for k, v in parts.items() if k != j) * FINGERPRINT_SIZE
                    for j, parts in enumerate(outgoing)
                ],
                received=[
                    sum(
                        len(outgoing[j].get(k, ()))
                        for j in range(self.n_servers)
                        if j != k
                    )
                    * FINGERPRINT_SIZE
                    for k in range(self.n_servers)
                ],
            )
            # delivered[k][j] = fingerprints server k received from server j.
            # Either carried over real loopback sockets (wire mode) or by
            # list passing; the simulated charge above applies to both.
            if self.wire_exchange:
                delivered = self._wire_transport().exchange_fingerprints(outgoing)
            else:
                delivered = [
                    {
                        j: parts[k]
                        for j, parts in enumerate(outgoing)
                        if parts.get(k)
                    }
                    for k in range(self.n_servers)
                ]
            barrier(lanes)

        # -- Phase 2: PSIL on every index part concurrently.
        psil_t0 = max(lane.now for lane in lanes)
        with trace_span("cluster.psil", sim_clock=lane_clock) as psil_span:
            # owner -> fp -> sorted list of requesting servers
            requests: List[Dict[Fingerprint, List[int]]] = [dict() for _ in self.servers]
            for owner in range(self.n_servers):
                table = requests[owner]
                for j in sorted(delivered[owner]):
                    for fp in delivered[owner][j]:
                        reqs = table.setdefault(fp, [])
                        if j not in reqs:
                            reqs.append(j)
            # per-origin decisions: fp -> ("dup", cid) | ("store",) | ("skip",)
            decisions: List[Dict[Fingerprint, Tuple] ] = [dict() for _ in self.servers]
            for k, server in enumerate(self.servers):
                table = requests[k]
                if not table:
                    continue
                sil = SequentialIndexLookup(
                    server.index,
                    cache_capacity=self.config.cache_capacity,
                    registry=self.telemetry,
                )
                # An owner may receive more than one cache-full; like the
                # single-server path, each SIL round sweeps at most a cache of
                # fingerprints (Section 5.2's "synchronous lookups" batching).
                pending = list(table.keys())
                duplicates: Dict[Fingerprint, int] = {}
                new_fps: List[Fingerprint] = []
                for start in range(0, len(pending), self.config.cache_capacity):
                    batch = pending[start : start + self.config.cache_capacity]
                    result = sil.run(
                        batch,
                        meter=server.meter,
                        disk=server.rig.index_disk,
                        cpu=server.rig.cpu,
                    )
                    stats.fingerprints_looked_up += result.fingerprints_distinct
                    duplicates.update(result.duplicates)
                    new_fps.extend(fp for fp, _ in result.new_cache.items())
                genuinely_new, already_pending = server.tpds.checking.screen(new_fps)
                for fp, requesters in table.items():
                    if fp in duplicates:
                        for j in requesters:
                            decisions[j][fp] = ("dup", duplicates[fp])
                    elif fp in already_pending:
                        for j in requesters:
                            decisions[j][fp] = ("dup", already_pending[fp])
                for fp in genuinely_new:
                    requesters = sorted(table[fp])
                    decisions[requesters[0]][fp] = ("store",)
                    for j in requesters[1:]:
                        decisions[j][fp] = ("skip",)
            barrier(lanes)
            psil_span.annotate(fingerprints=stats.fingerprints_looked_up)
        stats.psil_wall_time = max(lane.now for lane in lanes) - psil_t0

        # Result exchange back to the requesting servers.
        with trace_span("cluster.exchange.results", sim_clock=lane_clock):
            self._charge_exchange(
                stats,
                sent=[
                    sum(
                        sum(1 for j in reqs if j != k) * _RESULT_RECORD
                        for reqs in requests[k].values()
                    )
                    for k in range(self.n_servers)
                ],
                received=[
                    sum(
                        _RESULT_RECORD
                        for fp, decision in decisions[j].items()
                        if self.owner_of(fp) != j
                    )
                    for j in range(self.n_servers)
                ],
            )
            barrier(lanes)

        # -- Phase 3: chunk storing on every server, in parallel.
        storing_t0 = max(lane.now for lane in lanes)
        with trace_span("cluster.store", sim_clock=lane_clock) as store_span:
            stored_by_origin: List[Dict[Fingerprint, int]] = [dict() for _ in self.servers]
            stored_by_owner: List[Dict[Fingerprint, int]] = [dict() for _ in self.servers]
            for j, server in enumerate(self.servers):
                to_store = [fp for fp, d in decisions[j].items() if d[0] == "store"]
                stats.duplicate_chunks += sum(1 for d in decisions[j].values() if d[0] != "store")
                stored, s_stats = server.tpds.store_from_log(to_store)
                stored_by_origin[j] = stored
                stats.new_chunks_stored += s_stats.new_chunks_stored
                stats.new_bytes_stored += s_stats.new_bytes_stored
                stats.log_bytes_processed += s_stats.log_bytes_processed
                stats.containers_written += s_stats.containers_written
            if self.wire_exchange:
                route: List[Dict[int, List[Tuple[Fingerprint, int]]]] = [
                    defaultdict(list) for _ in self.servers
                ]
                for j in range(self.n_servers):
                    for fp, cid in stored_by_origin[j].items():
                        route[j][self.owner_of(fp)].append((fp, cid))
                inbound = self._wire_transport().exchange_records(route)
                for k in range(self.n_servers):
                    for j in sorted(inbound[k]):
                        stored_by_owner[k].update(inbound[k][j])
            else:
                for j in range(self.n_servers):
                    for fp, cid in stored_by_origin[j].items():
                        stored_by_owner[self.owner_of(fp)][fp] = cid
            barrier(lanes)
            store_span.set_io(bytes_in=stats.log_bytes_processed,
                              bytes_out=stats.new_bytes_stored)
            store_span.annotate(containers=stats.containers_written)
        stats.storing_wall_time = max(lane.now for lane in lanes) - storing_t0

        # Route stored entries to their owning servers' checking files.
        with trace_span("cluster.exchange.stored", sim_clock=lane_clock):
            self._charge_exchange(
                stats,
                sent=[
                    sum(
                        _RESULT_RECORD
                        for fp in stored_by_origin[j]
                        if self.owner_of(fp) != j
                    )
                    for j in range(self.n_servers)
                ],
                received=[
                    sum(
                        _RESULT_RECORD
                        for fp in stored_by_owner[k]
                        if self.owner_of(fp) == k and fp not in stored_by_origin[k]
                    )
                    for k in range(self.n_servers)
                ],
            )
            for k, entries in enumerate(stored_by_owner):
                if entries:
                    self.servers[k].tpds.accept_unregistered(entries)
            barrier(lanes)

        # -- Phase 4: PSIU per the asynchronous policy (one PSIU may service
        # several PSILs, Section 5.4).
        self._rounds_since_psiu += 1
        run_psiu = (
            force_psiu
            if force_psiu is not None
            else self._rounds_since_psiu >= self.config.siu_every
            and any(s.tpds.unregistered_count for s in self.servers)
        )
        if run_psiu:
            psiu_t0 = max(lane.now for lane in lanes)
            with trace_span("cluster.psiu", sim_clock=lane_clock) as psiu_span:
                for server in self.servers:
                    pending = server.tpds.unregistered_count
                    if pending:
                        server.tpds.run_siu_now()
                        stats.fingerprints_updated += pending
                barrier(lanes)
                psiu_span.annotate(fingerprints=stats.fingerprints_updated)
            stats.psiu_wall_time = max(lane.now for lane in lanes) - psiu_t0
            stats.psiu_performed = stats.fingerprints_updated > 0
            if stats.psiu_performed:
                self._rounds_since_psiu = 0

        return stats

    def _charge_exchange(
        self, stats: ClusterDedup2Stats, sent: Sequence[float], received: Sequence[float]
    ) -> None:
        """Charge an all-to-all exchange: each lane pays for the larger of
        its send and receive volumes at its NIC rate."""
        for k, (server, s_bytes, r_bytes) in enumerate(
            zip(self.servers, sent, received)
        ):
            t = self.network.exchange_time(s_bytes, r_bytes)
            if t:
                server.meter.charge("exchange.network", t)
            stats.exchange_bytes += int(s_bytes)
            self._t_sent[k].inc(int(s_bytes))
            self._t_received[k].inc(int(r_bytes))

    # ------------------------------------------------------------------ scaling
    def scale_out(self, keep_part_size: bool = False) -> "DebarCluster":
        """Performance scaling: double the server count (Section 4.1).

        This is how the paper's Section 6.2 experiment moves between run
        modes, e.g. (4, 64) -> (8, 64): each server's index part splits
        into two by one more prefix bit, and each half moves to its own
        (new) backup server.  The chunk repository is shared and untouched
        — "such simple scaling schemes do not need to change and scan the
        chunk repository".  Job chains and metadata carry over, so the
        preliminary filter keeps its history across the transition.

        ``keep_part_size=True`` additionally capacity-scales each half back
        to the original per-server index size (the paper's (x, y) ->
        (2x, y) transitions); the default leaves halves at half size
        ((x, y) -> (2x, y/2)).

        Requires a quiesced cluster: no undetermined fingerprints, empty
        chunk logs, and no stored-but-unregistered entries (run
        ``run_dedup2(force_psiu=True)`` first).  Returns the new cluster;
        the old object must not be used afterwards.
        """
        if not isinstance(self.director, Director):
            raise NotImplementedError(
                "scale_out currently supports single-director clusters; "
                "rebuild a DirectorEnsemble cluster at the new width instead"
            )
        for server in self.servers:
            if server.undetermined_count or server.tpds.chunk_log:
                raise RuntimeError(
                    f"server {server.server_id} has pending dedup-2 work; "
                    "run run_dedup2(force_psiu=True) before scaling out"
                )
            if server.tpds.unregistered_count:
                raise RuntimeError(
                    f"server {server.server_id} has unregistered fingerprints; "
                    "run run_dedup2(force_psiu=True) before scaling out"
                )
        new = DebarCluster.__new__(DebarCluster)
        new.w_bits = self.w_bits + 1
        new.n_servers = self.n_servers * 2
        new.config = self.config
        new.network = self.network
        new.repository = self.repository
        new.director = Director(n_servers=new.n_servers, policy=self.director.policy)
        # Carry job chains and metadata over; jobs re-balance onto the
        # doubled server set on their next run.
        new.director.metadata = self.director.metadata
        new.director._jobs = self.director._jobs
        new.director._chains = self.director._chains
        new.director.dedup2_runs = self.director.dedup2_runs
        new._rounds_since_psiu = 0
        # The wire transport is sized to the server count; the doubled
        # cluster opens a fresh one on first use.
        new.wire_exchange = self.wire_exchange
        new._wire = None
        self.close()
        new._bind_instruments(self.telemetry)
        new.servers = []
        for server in self.servers:
            halves = server.index.split(1)
            for half_no, half in enumerate(halves):
                if keep_part_size:
                    half = half.scale_capacity()
                server_id = (server.server_id << 1) | half_no
                new.servers.append(
                    BackupServer(
                        server_id,
                        new.repository,
                        config=self.config,
                        index=half,
                        w_bits=new.w_bits,
                    )
                )
        # Lanes resume from the barrier point the old cluster reached.
        t = self.wall_clock
        for server in new.servers:
            server.clock.advance_to(t)
        return new

    # ------------------------------------------------------------------ restore
    def read_chunk(self, fp: Fingerprint, via_server: int) -> bytes:
        """Read one chunk through a given server (the client's server).

        Cache miss costs: a random index probe (remote if another server's
        part owns the fingerprint, adding an exchange round-trip) plus a
        container read (remote if the container lives on another
        repository node, adding a container-sized transfer).
        """
        server = self.servers[via_server]
        store = server.chunk_store
        cid = store.lpc.lookup(fp)
        if cid is None:
            owner = self.owner_of(fp)
            owner_server = self.servers[owner]
            cid, probes = owner_server.index.lookup_with_probes(fp)
            if cid is None:
                cid = owner_server.tpds.checking.get(fp)
                if cid is None:
                    raise KeyError(f"fingerprint {fp.hex()[:12]} not stored")
            server.meter.charge(
                "restore.index_random", server.rig.index_disk.random_read_time(probes)
            )
            if owner != via_server:
                server.meter.charge(
                    "restore.remote_lookup",
                    self.network.transfer_time(_RESULT_RECORD, messages=1),
                )
            container = server.tpds.container_manager.fetch(cid)
            node = self.repository.locate(cid)
            server.meter.charge(
                "restore.container_read",
                server.rig.repository_disk.seq_read_time(container.capacity),
            )
            if node != via_server % len(self.repository.nodes):
                server.meter.charge(
                    "restore.remote_container",
                    self.network.transfer_time(container.capacity),
                )
            store.lpc.insert_container(cid, container.fingerprints)
            return container.get(fp)
        container = self.repository.fetch(cid)
        return container.get(fp)

    def restore_run(self, run_id: int, via_server: Optional[int] = None) -> List[bytes]:
        """Restore every chunk of a recorded run through a server.

        Defaults to the server that performed the backup (where the LPC
        and repository affinity favour the read); returns payloads in
        file-index order.
        """
        server_id = via_server
        if server_id is None:
            run = self.director.find_run(run_id)
            if run is None:
                raise KeyError(f"no run {run_id} recorded")
            server_id = run.server or 0
        payloads: List[bytes] = []
        for entry in self.director.metadata.files_for_run(run_id):
            for fp in entry.fingerprints:
                payloads.append(self.read_chunk(fp, via_server=server_id))
        return payloads

    # ------------------------------------------------------------------ defrag
    def resolve_container(self, fp: Fingerprint) -> Optional[int]:
        """Locate a fingerprint's container via its owning index part."""
        owner = self.servers[self.owner_of(fp)]
        cid = owner.index.lookup(fp)
        if cid is None:
            cid = owner.tpds.checking.get(fp)
        return cid

    def defragment_run(
        self,
        run_id: int,
        threshold: float = 0.25,
        force: bool = False,
        target_node: Optional[int] = None,
    ):
        """Aggregate one backup run's containers (Section 6.3).

        Looks up the run's file indices at the director, resolves the
        containers through the owning index parts, and moves stragglers to
        the repository node local to the server that backs (and restores)
        this job — that is where read locality pays — charging the move
        time to that server's lane.  Pass ``target_node`` to override.
        """
        from repro.storage.defrag import DefragmentationManager

        fps = []
        located = self.director.find_run(run_id)
        run_server = (located.server or 0) if located is not None else 0
        for entry in self.director.metadata.files_for_run(run_id):
            fps.extend(entry.fingerprints)
        manager = DefragmentationManager(self.repository, threshold=threshold)
        target = (
            target_node
            if target_node is not None
            else run_server % len(self.repository.nodes)
        )
        lane_server = self.servers[target % self.n_servers]
        return manager.run(
            fps,
            self.resolve_container,
            target_node=target,
            meter=lane_server.meter,
            disk=lane_server.rig.repository_disk,
            network=self.network,
            force=force,
        )

    # ------------------------------------------------------------------ audit
    def audit(self, deep: bool = False):
        """Consistency sweep over every index part and the shared repository.

        Each part is checked against the placement/overflow invariants and
        its prefix ownership; cross-references and run restorability route
        through the owning servers, exactly as PSIL/restore would.  Tests
        run this after every PSIL/PSIU round (see :mod:`repro.audit`).
        """
        from repro.audit import audit_cluster

        return audit_cluster(self, deep=deep)

    # ------------------------------------------------------------------ accounting
    @property
    def total_index_bytes(self) -> int:
        """Combined size of all index parts."""
        return sum(s.index.size_bytes for s in self.servers)

    @property
    def physical_bytes_stored(self) -> int:
        return self.repository.stored_chunk_bytes

    @property
    def wall_clock(self) -> float:
        """Cluster wall time: the latest lane."""
        return max(lane.now for lane in self._lanes())
