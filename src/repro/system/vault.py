"""DebarVault: a persistent, single-server DEBAR deployment on local disk.

Everything the paper's single-server system keeps on disk, actually on
disk:

::

    vault/
      catalog.json     jobs, runs, file metadata + hex fingerprint indices
      index.bin        the DEBAR disk index (FileBlockStore-backed)
      containers/      one self-described file per sealed container

A vault survives process restarts: reopening re-attaches the index (bucket
counts are rebuilt from the file), rescans the container directory, and
reloads the catalog.  Each ``backup()`` runs dedup-1 and a full dedup-2
(with SIU) before returning, so a closed vault never has in-flight state.
If ``index.bin`` is lost, :meth:`recover_index` rebuilds it from the
containers' metadata sections (Section 4.1's recovery path).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.backend.cache import LruMetaCache
from repro.backend.objectstore import ObjectStoreBackend, RequestProfile
from repro.backend.planner import ColdChunkReader
from repro.chunking.cdc import ContentDefinedChunker
from repro.client.backup_client import BackupEngine
from repro.core.checking import CheckingFile
from repro.core.disk_index import DiskIndex
from repro.core.tpds import TwoPhaseDeduplicator
from repro.director.metadata import FileIndexEntry, FileMetadata
from repro.durability.errors import CorruptionError
from repro.durability.framing import KIND_INDEX, Superblock, unpack_superblock
from repro.durability.fsshim import LocalFs
from repro.durability.recovery import RecoveryManager, RecoveryReport
from repro.server.chunk_store import ChunkStore
from repro.server.file_store import FileStore
from repro.storage.blockstore import FileBlockStore
from repro.storage.chunk_log import PersistentChunkLog
from repro.storage.tiered import TieredChunkRepository
from repro.telemetry.clock import wall_now
from repro.telemetry.registry import MetricsRegistry, get_registry
from repro.telemetry.tracing import trace_span

import struct

PathLike = Union[str, Path]

_CATALOG = "catalog.json"
_INDEX = "index.bin"
_INDEX_SB = "index.sb"
_CHUNK_LOG = "chunk.log"
_CHECKING = "checking.json"
_CONTAINERS = "containers"

#: Index-superblock payload: n_bits, bucket_bytes, entry count.
_INDEX_SB_PAYLOAD = struct.Struct("<III")

#: Catalog schema version (bumped on incompatible layout changes).
CATALOG_VERSION = 1


@dataclass
class GcReport:
    """Outcome of one garbage-collection pass."""

    containers_scanned: int = 0
    containers_removed: int = 0
    containers_rewritten: int = 0
    containers_kept_with_dead: int = 0
    live_chunks_copied: int = 0
    dead_chunks_dropped: int = 0
    bytes_reclaimed: int = 0


@dataclass
class VaultRun:
    """One completed backup recorded in the catalog."""

    run_id: int
    job: str
    timestamp: float
    logical_bytes: int
    transferred_bytes: int
    files: List[FileIndexEntry]


class VaultError(Exception):
    """Raised on catalog/layout problems."""


class DebarVault:
    """Open (or create) a DEBAR vault rooted at a directory."""

    def __init__(
        self,
        root: PathLike,
        *,
        index_n_bits: int = 12,
        index_bucket_bytes: int = 512,
        container_bytes: int = 1 << 20,
        filter_capacity: int = 1 << 16,
        cache_capacity: int = 1 << 20,
        telemetry: Optional[MetricsRegistry] = None,
        fs: Optional[LocalFs] = None,
        auto_recover: bool = True,
    ) -> None:
        self.telemetry = telemetry if telemetry is not None else get_registry()
        self.fs = fs if fs is not None else LocalFs()
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        catalog_path = self.root / _CATALOG
        if catalog_path.exists():
            self._catalog = json.loads(catalog_path.read_text())
            if self._catalog.get("version") != CATALOG_VERSION:
                raise VaultError(
                    f"catalog version {self._catalog.get('version')} unsupported"
                )
            index_n_bits = self._catalog["index_n_bits"]
            index_bucket_bytes = self._catalog["index_bucket_bytes"]
            container_bytes = self._catalog["container_bytes"]
        else:
            self._catalog = {
                "version": CATALOG_VERSION,
                "index_n_bits": index_n_bits,
                "index_bucket_bytes": index_bucket_bytes,
                "container_bytes": container_bytes,
                "runs": [],
            }
        self.container_bytes = container_bytes
        self._t_retries = self.telemetry.counter(
            "io.retries", "transient I/O errors retried by the storage layer"
        ).labels()
        self.repository = TieredChunkRepository(
            self.root / _CONTAINERS,
            container_bytes=container_bytes,
            fs=self.fs,
            on_retry=self._t_retries.inc,
        )
        if self._catalog.get("cold"):
            self._attach_cold(self._catalog["cold"])
        index_size = (1 << index_n_bits) * index_bucket_bytes
        self._index_store = FileBlockStore(
            self.root / _INDEX, index_size, fs=self.fs, on_retry=self._t_retries.inc
        )
        index = DiskIndex(
            index_n_bits, bucket_bytes=index_bucket_bytes, store=self._index_store
        )
        self._index_generation = self._read_index_generation()
        self.tpds = TwoPhaseDeduplicator(
            index,
            self.repository,
            filter_capacity=filter_capacity,
            cache_capacity=cache_capacity,
            container_bytes=container_bytes,
            materialize=True,
            siu_every=1,
            telemetry=self.telemetry,
            chunk_log=PersistentChunkLog(
                self.root / _CHUNK_LOG, registry=self.telemetry, fs=self.fs
            ),
            checking=CheckingFile(self.root / _CHECKING, fs=self.fs),
        )
        self.file_store = FileStore(self.tpds)
        self.chunk_store = ChunkStore(self.tpds)
        self.engine = BackupEngine(
            "vault", chunker=ContentDefinedChunker(), registry=self.telemetry
        )
        self._t_backups = self.telemetry.counter(
            "vault.backups", "backup runs completed by this vault"
        ).labels()
        self._t_restores = self.telemetry.counter(
            "vault.restores", "restore operations completed by this vault"
        ).labels()
        self._save_catalog()
        #: Outbound replicator (repro.replication), attached by the serve
        #: CLI when --replicate-to is configured; ``None`` standalone.
        #: When set, every committed run (and gc pass) notifies it so new
        #: sealed containers are queued for asynchronous shipment.
        self.replicator: Optional[object] = None
        #: Outbound archive shipper (repro.archive), attached by the serve
        #: CLI when --archive-to is configured; ``None`` standalone.  Same
        #: contract: notified strictly after dedup-2 + catalog commit.
        self.archive_shipper: Optional[object] = None
        #: What the open-time recovery pass found (``None`` when disabled).
        self.recovery_report: Optional[RecoveryReport] = None
        if auto_recover:
            self.recovery_report = RecoveryManager(self).run()
            if self.recovery_report.replayed:
                self._sync_index_geometry()
                self._flush_index()

    # -- cold tier ----------------------------------------------------------------
    def _cold_root(self, config: dict) -> Path:
        root = Path(config["root"])
        return root if root.is_absolute() else self.root / root

    def _attach_cold(self, config: dict) -> None:
        backend = ObjectStoreBackend(
            self._cold_root(config),
            profile=RequestProfile.from_json(config.get("profile")),
            registry=self.telemetry,
        )
        self.repository.attach_cold(
            backend,
            meta_cache=LruMetaCache(
                capacity=int(config.get("meta_cache_capacity", 1024)),
                registry=self.telemetry,
            ),
        )

    def enable_cold_tier(
        self,
        root: Optional[PathLike] = None,
        profile: Optional[RequestProfile] = None,
        meta_cache_capacity: int = 1024,
    ) -> None:
        """Attach an object-store cold tier and persist it in the catalog.

        ``root`` is the bucket directory (default ``<vault>/cold``; stored
        relative to the vault root when inside it, so the vault stays
        relocatable).  Idempotent — re-enabling rewires the same bucket.
        Every subsequent open re-attaches automatically.
        """
        path = Path(root) if root is not None else self.root / "cold"
        try:
            stored = str(path.resolve().relative_to(self.root.resolve()))
        except ValueError:
            stored = str(path)
        config = {
            "backend": "object",
            "root": stored,
            "profile": (profile or RequestProfile()).to_json(),
            "meta_cache_capacity": meta_cache_capacity,
        }
        self._catalog["cold"] = config
        self._attach_cold(config)
        self._save_catalog()

    def cold_reader(self, plan: Optional[List[bytes]] = None, batch: bool = True) -> ColdChunkReader:
        """A tier-aware chunk reader (hot via the chunk store's LPC, cold
        via planned multi-range GETs), primed with ``plan`` if given."""
        reader = ColdChunkReader(
            self.repository,
            self.tpds.index,
            self.chunk_store,
            batch=batch,
            registry=self.telemetry,
        )
        if plan is not None:
            reader.plan(plan)
        return reader

    # -- index superblock ---------------------------------------------------------
    def _read_index_generation(self) -> int:
        sb_path = self.root / _INDEX_SB
        if not self.fs.exists(sb_path):
            return 0
        try:
            sb, _ = unpack_superblock(self.fs.read_file(sb_path), artifact="index superblock")
            return sb.generation if sb.kind == KIND_INDEX else 0
        except CorruptionError:
            return 0  # rewritten at the next flush; scrub reports the damage

    def _write_index_superblock(self) -> None:
        """Stamp the index sidecar: geometry + entry count, fresh generation."""
        index = self.tpds.index
        self._index_generation += 1
        payload = _INDEX_SB_PAYLOAD.pack(
            index.n_bits, index.bucket_bytes, index.entry_count
        )
        self.fs.write_file(
            self.root / _INDEX_SB,
            Superblock(KIND_INDEX, self._index_generation, payload).pack(),
        )

    def _flush_index(self) -> None:
        self._index_store.flush()
        self._write_index_superblock()

    # -- catalog ------------------------------------------------------------------
    def _save_catalog(self) -> None:
        tmp = self.root / (_CATALOG + ".tmp")
        tmp.write_text(json.dumps(self._catalog, indent=1))
        tmp.replace(self.root / _CATALOG)

    def _record_run(self, run: VaultRun) -> None:
        self._catalog["runs"].append(
            {
                "run_id": run.run_id,
                "job": run.job,
                "timestamp": run.timestamp,
                "logical_bytes": run.logical_bytes,
                "transferred_bytes": run.transferred_bytes,
                "files": [
                    {
                        "path": e.metadata.path,
                        "size": e.metadata.size,
                        "mode": e.metadata.mode,
                        "mtime": e.metadata.mtime,
                        "fingerprints": [fp.hex() for fp in e.fingerprints],
                    }
                    for e in run.files
                ],
            }
        )
        self._save_catalog()

    def _load_run(self, payload: dict) -> VaultRun:
        return VaultRun(
            run_id=payload["run_id"],
            job=payload["job"],
            timestamp=payload["timestamp"],
            logical_bytes=payload["logical_bytes"],
            transferred_bytes=payload["transferred_bytes"],
            files=[
                FileIndexEntry(
                    FileMetadata(f["path"], f["size"], f["mode"], f["mtime"]),
                    [bytes.fromhex(h) for h in f["fingerprints"]],
                )
                for f in payload["files"]
            ],
        )

    # -- public API --------------------------------------------------------------------
    def runs(self, job: Optional[str] = None) -> List[VaultRun]:
        """All recorded runs, oldest first (optionally one job's chain)."""
        runs = [self._load_run(p) for p in self._catalog["runs"]]
        if job is not None:
            runs = [r for r in runs if r.job == job]
        return runs

    def latest_run(self, job: str) -> Optional[VaultRun]:
        chain = self.runs(job)
        return chain[-1] if chain else None

    def filtering_for(self, job: str) -> Optional[List[bytes]]:
        """The filtering fingerprints for a job's next run: the previous
        run's full fingerprint sequence (the paper's job-chain semantics),
        or ``None`` on a first run."""
        previous = self.latest_run(job)
        if previous is None:
            return None
        return [fp for e in previous.files for fp in e.fingerprints]

    def backup(
        self, job: str, dataset: List[PathLike], timestamp: Optional[float] = None
    ) -> VaultRun:
        """Back up a dataset under a job name; dedup-2 completes inline.

        The previous run of the same job seeds the preliminary filter, per
        the paper's job-chain semantics.  ``timestamp`` defaults to the
        telemetry wall clock (:func:`repro.telemetry.clock.wall_now`), the
        single time source the CLI and tests can redirect.
        """

        def stream():
            for metadata, chunks in self.engine.iter_dataset([Path(p) for p in dataset]):
                yield metadata, [(c.fingerprint, c.size, c.data) for c in chunks]

        return self.backup_stream(job, stream(), timestamp=timestamp)

    def backup_stream(
        self,
        job: str,
        files,
        timestamp: Optional[float] = None,
        filtering: Optional[List[bytes]] = None,
    ) -> VaultRun:
        """Back up pre-chunked file streams (the local and remote paths share
        this).

        ``files`` yields ``(FileMetadata, [stream chunks])`` pairs where a
        stream chunk is ``(fp, size, data)`` — ``data`` may be ``None`` for
        chunks the preliminary filter is about to reject, which is what a
        remote session sends for payloads it never transferred.
        ``filtering`` overrides the job-chain filtering fingerprints; a
        remote session passes the set it captured at session begin so its
        per-chunk admission decisions replay identically at commit.
        """
        if not job:
            raise VaultError("job name required")
        if timestamp is None:
            timestamp = wall_now()
        if filtering is None:
            filtering = self.filtering_for(job)
        with trace_span("backup", sim_clock=self.tpds.clock, job=job) as span:
            with trace_span("client.ingest", sim_clock=self.tpds.clock) as ingest:
                session = self.file_store.begin_session(filtering)
                files_seen = 0
                for metadata, elements in files:
                    session.add_fingerprint_stream(elements, metadata=metadata)
                    files_seen += 1
                ingest.annotate(files=files_seen)
            stats, entries = session.close()  # runs dedup-1 (its own child span)
            self.tpds.dedup2(force_siu=True)  # child span "dedup2"
            with trace_span("catalog", sim_clock=self.tpds.clock):
                self._sync_index_geometry()
                self._flush_index()
                run = VaultRun(
                    run_id=len(self._catalog["runs"]) + 1,
                    job=job,
                    timestamp=timestamp,
                    logical_bytes=stats.logical_bytes,
                    transferred_bytes=stats.transferred_bytes,
                    files=entries,
                )
                self._record_run(run)
            span.set_io(bytes_in=stats.logical_bytes, bytes_out=stats.transferred_bytes)
            span.annotate(run_id=run.run_id)
        self._t_backups.inc()
        if self.replicator is not None:
            # Strictly after dedup-2 + catalog commit: the inline path is
            # done; shipment of the newly sealed containers is queued
            # asynchronously (DESIGN.md §11.2).
            self.replicator.notify_run(run)
        if self.archive_shipper is not None:
            # Same timing for the archive: the run's delta is cut and
            # shipped asynchronously (DESIGN.md §15.4), so the inline
            # backup cost of archiving stays ~0%.
            self.archive_shipper.notify_run(run)
        return run

    def _sync_index_geometry(self) -> None:
        """Track index capacity scaling in the catalog and store handle.

        ``dedup2`` may have scaled the index (new n_bits, new backing file
        committed over ``index.bin``); the catalog must record the new
        geometry and the vault must flush the *current* store, or the next
        open re-attaches the wrong-sized index.
        """
        index = self.tpds.index
        if index.n_bits != self._catalog["index_n_bits"]:
            self._catalog["index_n_bits"] = index.n_bits
            self._index_store = index.store
            self._save_catalog()

    def restore(
        self,
        run_id: int,
        dest: PathLike,
        strip_prefix: PathLike = "/",
        job: Optional[str] = None,
    ) -> List[Path]:
        """Restore every file of a recorded run into ``dest``.

        ``job`` narrows the lookup to that job's chain — run ids are
        only unique per vault, so cluster callers qualify them.
        """
        for payload in self._catalog["runs"]:
            if payload["run_id"] == run_id and (job is None or payload["job"] == job):
                run = self._load_run(payload)
                break
        else:
            scope = f"job {job!r}" if job else "this vault"
            raise VaultError(f"no run {run_id} for {scope}")
        source = self.chunk_store
        if self.repository.cold is not None:
            # Cold-capable reader: hot chunks still flow through the LPC,
            # cold chunks through planned, coalesced multi-range GETs.
            source = self.cold_reader(
                [fp for e in run.files for fp in e.fingerprints]
            )
        with trace_span("restore", sim_clock=self.tpds.clock, run_id=run_id) as span:
            paths = self.engine.restore_run(
                run.files, source, dest, strip_prefix
            )
            span.set_io(bytes_out=sum(e.metadata.size for e in run.files))
            span.annotate(files=len(paths))
        self._t_restores.inc()
        return paths

    def verify(self, deep: bool = False) -> Dict[str, int]:
        """Integrity check: every catalogued fingerprint must resolve.

        ``deep=True`` additionally reads every referenced chunk and
        recomputes its SHA-1 — content addressing makes silent corruption
        detectable end to end (a flipped bit in any container payload
        changes the digest).  Returns counters; raises
        :class:`~repro.durability.errors.CorruptionError` (carrying the
        container ID and fingerprint) on the first inconsistency.
        """
        from repro.core.fingerprint import fingerprint as sha1

        checked = 0
        deep_checked = 0
        verified_payload: set = set()
        for payload in self._catalog["runs"]:
            for f in payload["files"]:
                for h in f["fingerprints"]:
                    fp = bytes.fromhex(h)
                    cid = self.tpds.index.lookup(fp)
                    if cid is None:
                        raise CorruptionError(
                            f"fingerprint {h[:12]} missing from index",
                            artifact="index", fingerprint=fp,
                        )
                    checked += 1
                    if deep and fp not in verified_payload:
                        container = self.repository.fetch(cid)
                        if fp not in container:
                            raise CorruptionError(
                                f"index points fingerprint {h[:12]} at container "
                                f"{cid}, which does not hold it",
                                artifact="index", container_id=cid, fingerprint=fp,
                            )
                        data = container.get(fp)
                        if sha1(data) != fp:
                            raise CorruptionError(
                                f"payload of {h[:12]} does not match its "
                                f"fingerprint — container {cid} is corrupt",
                                artifact="container", container_id=cid, fingerprint=fp,
                            )
                        verified_payload.add(fp)
                        deep_checked += 1
        return {
            "runs": len(self._catalog["runs"]),
            "fingerprints": checked,
            "payloads_verified": deep_checked,
        }

    def audit(self, deep: bool = False):
        """Sweep every invariant the store depends on (see :mod:`repro.audit`).

        Unlike :meth:`verify`, which stops at the first inconsistency, the
        auditor checks index placement/overflow invariants, index <->
        container cross-references, catalog restorability and index
        durability, and reports *all* findings.
        """
        from repro.audit import audit_vault

        return audit_vault(self, deep=deep)

    def diff(self, run_a: int, run_b: int) -> Dict[str, List[str]]:
        """Compare two runs at file granularity via their fingerprints.

        Returns paths ``added``/``removed``/``changed``/``unchanged`` going
        from ``run_a`` to ``run_b`` — fingerprint sequences make equality
        exact with no byte comparison.
        """
        def files_of(run_id: int) -> Dict[str, tuple]:
            for payload in self._catalog["runs"]:
                if payload["run_id"] == run_id:
                    return {
                        f["path"]: tuple(f["fingerprints"]) for f in payload["files"]
                    }
            raise VaultError(f"no run {run_id} in this vault")

        a, b = files_of(run_a), files_of(run_b)
        return {
            "added": sorted(set(b) - set(a)),
            "removed": sorted(set(a) - set(b)),
            "changed": sorted(p for p in set(a) & set(b) if a[p] != b[p]),
            "unchanged": sorted(p for p in set(a) & set(b) if a[p] == b[p]),
        }

    def recover_index(self) -> int:
        """Rebuild the disk index from container metadata (Section 4.1).

        Used when ``index.bin`` is lost or corrupted; returns the number of
        entries recovered.
        """
        index = self.tpds.index
        fresh = DiskIndex(
            index.n_bits,
            bucket_bytes=index.bucket_bytes,
            store=None,
        )
        for fp, cid in self.repository.iter_index_entries():
            fresh.insert(fp, cid)
        # Persist the rebuilt index over the file store.
        for k in range(fresh.n_buckets):
            index.write_bucket(fresh.read_bucket(k))
        self._flush_index()
        return len(fresh)

    # -- retention and garbage collection ---------------------------------------
    def forget(self, run_id: int, job: Optional[str] = None) -> None:
        """Drop a run from the catalog; its chunks remain until :meth:`gc`.

        This is the retention operation the paper leaves open: deletion in
        a de-duplicating store cannot remove chunks inline because later
        runs may share them — reclamation is a separate, reference-counted
        sweep.  ``job`` pins the (per-vault) run id to one job's chain so
        a cluster-routed forget cannot delete an unrelated job's run.
        """
        runs = self._catalog["runs"]
        for i, payload in enumerate(runs):
            if payload["run_id"] == run_id and (job is None or payload["job"] == job):
                del runs[i]
                self._save_catalog()
                return
        scope = f"job {job!r}" if job else "this vault"
        raise VaultError(f"no run {run_id} for {scope}")

    def live_fingerprints(self) -> set:
        """Fingerprints referenced by any catalogued run."""
        live = set()
        for payload in self._catalog["runs"]:
            for f in payload["files"]:
                live.update(bytes.fromhex(h) for h in f["fingerprints"])
        return live

    def gc(self, rewrite_threshold: float = 0.5) -> GcReport:
        """Reclaim space from chunks no catalogued run references.

        Three-way disposition per container: fully live -> keep; fully
        dead -> delete (and purge its index entries); partially live with
        a live fraction at or below ``rewrite_threshold`` -> copy the live
        chunks forward into fresh containers, repoint their index entries,
        and delete the original.  Mostly-live containers are kept and the
        dead space tolerated, bounding GC write amplification.
        """
        if not 0 <= rewrite_threshold <= 1:
            raise VaultError("rewrite_threshold must be in [0, 1]")
        with trace_span("gc", sim_clock=self.tpds.clock) as gc_span:
            report = self._gc(rewrite_threshold)
            gc_span.set_io(bytes_out=report.bytes_reclaimed)
            gc_span.annotate(
                removed=report.containers_removed,
                rewritten=report.containers_rewritten,
            )
        if self.replicator is not None and (
            report.containers_rewritten or report.containers_removed
        ):
            # Copy-forward containers are new sealed containers: they need
            # replicas too (removed originals simply stop being owed).
            self.replicator.notify_run(None)
        return report

    def _gc(self, rewrite_threshold: float) -> GcReport:
        live = self.live_fingerprints()
        report = GcReport()
        index = self.tpds.index
        writer: Optional["ContainerWriter"] = None
        pending: List[bytes] = []

        from repro.storage.container import ContainerWriter

        def seal_writer() -> None:
            nonlocal writer
            if writer is None or not len(writer):
                writer = None
                return
            cid = self.repository.allocate_id()
            container = writer.seal(cid)
            self.repository.store(container)
            for fp in pending:
                if not index.update(fp, cid):
                    index.insert(fp, cid)
            pending.clear()
            writer = None

        for cid in list(self.repository.container_ids()):
            container = self.repository.fetch(cid)
            report.containers_scanned += 1
            live_records = [r for r in container.records if r.fingerprint in live]
            dead = len(container.records) - len(live_records)
            if dead == 0:
                continue
            if not live_records:
                for record in container.records:
                    index.delete(record.fingerprint)
                self.repository.remove(cid)
                report.containers_removed += 1
                report.dead_chunks_dropped += dead
                report.bytes_reclaimed += container.data_bytes
                continue
            live_fraction = len(live_records) / len(container.records)
            if live_fraction > rewrite_threshold:
                report.containers_kept_with_dead += 1
                continue
            # Copy-forward: live chunks move, dead chunks vanish.
            for record in live_records:
                payload = container.get(record.fingerprint)
                if writer is None:
                    writer = ContainerWriter(self.container_bytes, materialize=True)
                if not writer.fits(record.size):
                    seal_writer()
                    writer = ContainerWriter(self.container_bytes, materialize=True)
                writer.add(record.fingerprint, data=payload)
                pending.append(record.fingerprint)
                report.live_chunks_copied += 1
            for record in container.records:
                if record.fingerprint not in live:
                    index.delete(record.fingerprint)
                    report.dead_chunks_dropped += 1
                    report.bytes_reclaimed += record.size
            self.repository.remove(cid)
            report.containers_rewritten += 1
        seal_writer()
        self._flush_index()
        return report

    def stats(self) -> Dict[str, float]:
        """Vault-level accounting (also published as telemetry gauges)."""
        logical = sum(p["logical_bytes"] for p in self._catalog["runs"])
        physical = self.repository.stored_chunk_bytes
        stats = {
            "runs": len(self._catalog["runs"]),
            "logical_bytes": logical,
            "physical_bytes": physical,
            "compression_ratio": logical / physical if physical else float("inf"),
            "containers": len(self.repository),
            "containers_cold": sum(
                1
                for cid in self.repository.container_ids()
                if self.repository.tier_of(cid) == "cold"
            ),
            "index_entries": len(self.tpds.index),
            "index_utilization": self.tpds.index.utilization,
        }
        for key, value in stats.items():
            if value != float("inf"):
                self.telemetry.gauge(
                    f"vault.{key}", f"vault accounting: {key}"
                ).set(value)
        return stats

    def close(self) -> None:
        """Flush and release the on-disk index."""
        self._flush_index()
        self._index_store.close()

    def __enter__(self) -> "DebarVault":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
