"""Containers: the unit of storage in the chunk repository (Section 3.4).

A container is fixed-size (8 MB by default, holding ~1024 chunks of the 8 KB
expected size) and *self-described*: a metadata section located before the
data section records, for every chunk, its fingerprint, size and offset, so
a corrupted index can be rebuilt by scanning containers alone.

Containers are filled with the stream-informed segment layout (SISL) adopted
from DDFS: new chunks are appended in the logical order they appear in the
backup stream, which gives the spatial locality that makes the LPC read
cache effective during restores.

Payloads may be *virtualized*: the evaluation workloads (like the paper's
own Section 6.2 experiments) carry synthetic chunks whose content is
irrelevant, so containers can record metadata only and regenerate payload
bytes deterministically from the fingerprint on read.  All bookkeeping
(offsets, capacities, IDs, locality) is identical in both modes.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.storage.repository import ChunkRepository

from repro.core.fingerprint import FINGERPRINT_SIZE, Fingerprint
from repro.durability.crc import crc32c
from repro.durability.errors import CorruptionError, TornWriteError
from repro.durability.framing import (
    KIND_CONTAINER,
    Superblock,
    has_superblock,
    superblock_size,
    unpack_superblock,
)
from repro.telemetry.registry import MetricsRegistry, get_registry

#: Default container size (the paper's 8 MB).
CONTAINER_SIZE = 8 * 1024 * 1024

#: Legacy (pre-durability) per-chunk record: fingerprint, size, offset.
_META_RECORD = struct.Struct(f"<{FINGERPRINT_SIZE}sII")

#: Legacy metadata section header: chunk count.
_META_HEADER = struct.Struct("<I")

#: Framed per-chunk record: fingerprint, size, offset, payload CRC32C.
_FRAMED_RECORD = struct.Struct(f"<{FINGERPRINT_SIZE}sIII")

#: Framed superblock payload: container ID, record count, metadata-section CRC.
_SB_PAYLOAD = struct.Struct("<QII")

#: Fixed on-disk bytes before the record array in a framed image.
FRAMED_META_FIXED = superblock_size(_SB_PAYLOAD.size)


def default_payload(fp: Fingerprint, size: int) -> bytes:
    """Deterministic stand-in payload for virtualized chunks.

    Repeats the fingerprint to ``size`` bytes, so restored virtual chunks are
    reproducible and distinct per fingerprint (good enough to catch routing
    bugs in round-trip tests).
    """
    reps = size // FINGERPRINT_SIZE + 1
    return (fp * reps)[:size]


@dataclass(frozen=True)
class ChunkRecord:
    """One chunk's metadata inside a container.

    ``crc`` is the CRC32C of the chunk payload, present once the container
    has been through the framed on-disk format (``None`` for records that
    were never serialized or came from a legacy image); it never takes
    part in equality so sealed and reloaded containers still compare.
    """

    fingerprint: Fingerprint
    size: int
    offset: int
    crc: Optional[int] = field(default=None, compare=False)


@dataclass(frozen=True)
class PayloadFault:
    """One damaged chunk payload found by :meth:`Container.verify_payloads`."""

    fingerprint: Fingerprint
    file_offset: int  #: byte offset of the payload inside the container image
    reason: str


class MetaPrefixShort(Exception):
    """:meth:`Container.parse_meta` needs more leading bytes.

    ``needed`` is the prefix length that will satisfy the parse — the
    caller issues one more range read of exactly that much and retries.
    """

    def __init__(self, needed: int) -> None:
        super().__init__(f"metadata section needs {needed} leading bytes")
        self.needed = needed


def verify_records(
    records: List[ChunkRecord],
    read_at: Callable[[int, int], bytes],
    base_offset: int = 0,
) -> List[PayloadFault]:
    """Check chunk payloads against their stored checksums via a reader.

    ``read_at(offset, size)`` returns payload bytes at a data-section
    offset — a slice of an in-memory image, a :class:`SegmentBuffer` over
    a few coalesced range GETs, or a raw backend ``get_range``.  This is
    what lets deep verify of a *cold* container check exactly the suspect
    records instead of downloading the whole image.  Framed records verify
    via CRC32C; legacy records (no CRC) re-hash against the fingerprint.
    """
    faults: List[PayloadFault] = []
    for rec in records:
        where = base_offset + rec.offset
        try:
            chunk = read_at(rec.offset, rec.size)
        except KeyError:
            faults.append(PayloadFault(rec.fingerprint, where, "payload unreadable"))
            continue
        if len(chunk) < rec.size:
            faults.append(PayloadFault(rec.fingerprint, where, "payload cut short"))
        elif rec.crc is not None:
            if crc32c(chunk) != rec.crc:
                faults.append(
                    PayloadFault(rec.fingerprint, where, "payload CRC mismatch")
                )
        elif hashlib.sha1(chunk).digest() != rec.fingerprint:
            faults.append(
                PayloadFault(rec.fingerprint, where, "payload digest mismatch (legacy)")
            )
    return faults


@dataclass
class Container:
    """A sealed, self-described container.

    ``data`` is ``None`` for metadata-only (virtualized) containers.
    """

    container_id: int
    records: List[ChunkRecord]
    data: Optional[bytes] = None
    capacity: int = CONTAINER_SIZE
    legacy: bool = field(default=False, compare=False)
    _by_fp: Dict[Fingerprint, ChunkRecord] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if not self._by_fp:
            self._by_fp = {r.fingerprint: r for r in self.records}

    @property
    def fingerprints(self) -> List[Fingerprint]:
        """Chunk fingerprints in stream (SISL) order."""
        return [r.fingerprint for r in self.records]

    @property
    def data_bytes(self) -> int:
        """Total payload bytes described by the metadata section."""
        return sum(r.size for r in self.records)

    @property
    def metadata_bytes(self) -> int:
        """On-disk size of the metadata section (superblock + record array)."""
        if self.legacy:
            return _META_HEADER.size + len(self.records) * _META_RECORD.size
        return FRAMED_META_FIXED + len(self.records) * _FRAMED_RECORD.size

    @property
    def data_start(self) -> int:
        """Byte offset of the data section inside the on-disk image."""
        return self.metadata_bytes

    def __contains__(self, fp: Fingerprint) -> bool:
        return fp in self._by_fp

    def record_for(self, fp: Fingerprint) -> ChunkRecord:
        try:
            return self._by_fp[fp]
        except KeyError:
            raise KeyError(f"fingerprint {fp.hex()[:12]} not in container {self.container_id}")

    def get(
        self,
        fp: Fingerprint,
        payload: Callable[[Fingerprint, int], bytes] = default_payload,
    ) -> bytes:
        """Read one chunk's payload (regenerated via ``payload`` if virtual)."""
        rec = self.record_for(fp)
        if self.data is not None:
            return self.data[rec.offset : rec.offset + rec.size]
        return payload(fp, rec.size)

    # -- serialisation -------------------------------------------------------
    def serialize(self) -> bytes:
        """Full self-described on-disk image in the framed format.

        Layout: superblock (kind ``CTR``, generation = container ID,
        payload = ID + record count + metadata CRC), then one framed
        record per chunk carrying its payload CRC32C, then the data
        section, zero-padded to the fixed capacity.
        """
        if self.data is None:
            raise ValueError("cannot serialise a metadata-only container")
        recs = []
        for r in self.records:
            crc = r.crc
            if crc is None:
                crc = crc32c(self.data[r.offset : r.offset + r.size])
            recs.append(_FRAMED_RECORD.pack(r.fingerprint, r.size, r.offset, crc))
        meta = b"".join(recs)
        sb = Superblock(
            KIND_CONTAINER,
            self.container_id,
            _SB_PAYLOAD.pack(self.container_id, len(recs), crc32c(meta)),
        )
        blob = sb.pack() + meta + self.data
        if len(blob) > self.capacity:
            raise ValueError("container image exceeds its fixed size")
        return blob + b"\x00" * (self.capacity - len(blob))

    @classmethod
    def deserialize(cls, container_id: int, blob: bytes, capacity: int = CONTAINER_SIZE) -> "Container":
        """Parse a serialized container image (framed or legacy).

        Framed images get their superblock and metadata section verified
        here (cheap — a few bytes per record); payload CRCs are checked
        lazily by scrub/audit via :meth:`verify_payloads`.
        """
        artifact = f"container {container_id}"
        if has_superblock(blob):
            sb, off = unpack_superblock(blob, artifact=artifact)
            if sb.kind != KIND_CONTAINER:
                raise CorruptionError(
                    f"{artifact}: superblock kind {sb.kind!r} is not a container",
                    artifact=artifact, container_id=container_id,
                )
            stored_id, count, meta_crc = _SB_PAYLOAD.unpack(sb.payload)
            if stored_id != container_id:
                raise CorruptionError(
                    f"{artifact}: image claims to be container {stored_id}",
                    artifact=artifact, container_id=container_id,
                )
            meta = blob[off : off + count * _FRAMED_RECORD.size]
            if len(meta) < count * _FRAMED_RECORD.size:
                raise TornWriteError(
                    f"{artifact}: metadata section cut short",
                    artifact=artifact, container_id=container_id, offset=off,
                )
            if crc32c(meta) != meta_crc:
                raise CorruptionError(
                    f"{artifact}: metadata section CRC mismatch",
                    artifact=artifact, container_id=container_id, offset=off,
                )
            records = [
                ChunkRecord(*_FRAMED_RECORD.unpack_from(meta, i * _FRAMED_RECORD.size))
                for i in range(count)
            ]
            data_start = off + len(meta)
            legacy = False
        else:
            (count,) = _META_HEADER.unpack_from(blob, 0)
            records = []
            data_start = _META_HEADER.size
            for _ in range(count):
                fp, size, offset = _META_RECORD.unpack_from(blob, data_start)
                records.append(ChunkRecord(fp, size, offset))
                data_start += _META_RECORD.size
            legacy = True
        data_len = max((r.offset + r.size for r in records), default=0)
        data = blob[data_start : data_start + data_len]
        return cls(container_id, records, data, capacity, legacy=legacy)

    @classmethod
    def parse_meta(
        cls, container_id: int, prefix: bytes
    ) -> tuple:
        """Parse ``(records, data_start, legacy)`` from a leading image slice.

        The cold tier fetches container metadata with a bounded range read
        instead of the whole image; when the supplied prefix is too short
        for the record array, :class:`MetaPrefixShort` names the exact
        prefix length a retry needs.  The framed metadata CRC is verified
        here, same as :meth:`deserialize`.
        """
        artifact = f"container {container_id}"
        if len(prefix) < FRAMED_META_FIXED:
            raise MetaPrefixShort(FRAMED_META_FIXED)
        if has_superblock(prefix):
            sb, off = unpack_superblock(prefix, artifact=artifact)
            if sb.kind != KIND_CONTAINER:
                raise CorruptionError(
                    f"{artifact}: superblock kind {sb.kind!r} is not a container",
                    artifact=artifact, container_id=container_id,
                )
            stored_id, count, meta_crc = _SB_PAYLOAD.unpack(sb.payload)
            if stored_id != container_id:
                raise CorruptionError(
                    f"{artifact}: image claims to be container {stored_id}",
                    artifact=artifact, container_id=container_id,
                )
            needed = off + count * _FRAMED_RECORD.size
            if len(prefix) < needed:
                raise MetaPrefixShort(needed)
            meta = prefix[off:needed]
            if crc32c(meta) != meta_crc:
                raise CorruptionError(
                    f"{artifact}: metadata section CRC mismatch",
                    artifact=artifact, container_id=container_id, offset=off,
                )
            records = [
                ChunkRecord(*_FRAMED_RECORD.unpack_from(meta, i * _FRAMED_RECORD.size))
                for i in range(count)
            ]
            return records, needed, False
        if len(prefix) < _META_HEADER.size:
            raise MetaPrefixShort(_META_HEADER.size)
        (count,) = _META_HEADER.unpack_from(prefix, 0)
        needed = _META_HEADER.size + count * _META_RECORD.size
        if len(prefix) < needed:
            raise MetaPrefixShort(needed)
        records = []
        at = _META_HEADER.size
        for _ in range(count):
            fp, size, offset = _META_RECORD.unpack_from(prefix, at)
            records.append(ChunkRecord(fp, size, offset))
            at += _META_RECORD.size
        return records, needed, True

    def verify_payloads(
        self, records: Optional[List[ChunkRecord]] = None
    ) -> List[PayloadFault]:
        """Check chunk payloads against their stored checksums.

        ``records`` narrows the check to a suspect subset (default: all).
        Virtual (metadata-only) containers have nothing to verify.  The
        actual checking is :func:`verify_records`, shared with the cold
        tier's ranged verify so an in-memory image and a range-read sweep
        cannot diverge.
        """
        if self.data is None:
            return []
        data = self.data
        return verify_records(
            self.records if records is None else records,
            lambda offset, size: data[offset : offset + size],
            base_offset=self.data_start,
        )


class ContainerWriter:
    """An open in-memory container being filled in SISL order.

    Chunks are accepted until the combined metadata + data sections would
    exceed the fixed container size; the Chunk Store then seals it, submits
    it to the Container Manager and opens a fresh one (Section 5.3).
    """

    def __init__(self, capacity: int = CONTAINER_SIZE, materialize: bool = True) -> None:
        if capacity <= FRAMED_META_FIXED + _FRAMED_RECORD.size:
            raise ValueError("container capacity too small for a single chunk record")
        self.capacity = capacity
        self.materialize = materialize
        self._records: List[ChunkRecord] = []
        self._data = bytearray() if materialize else None
        self._data_size = 0

    def __len__(self) -> int:
        return len(self._records)

    @property
    def used_bytes(self) -> int:
        """Bytes of the fixed container already committed (framed format)."""
        meta = FRAMED_META_FIXED + len(self._records) * _FRAMED_RECORD.size
        return meta + self._data_size

    def fits(self, chunk_size: int) -> bool:
        """Would a chunk of ``chunk_size`` bytes fit?"""
        return self.used_bytes + _FRAMED_RECORD.size + chunk_size <= self.capacity

    def add(self, fp: Fingerprint, data: Optional[bytes] = None, size: Optional[int] = None) -> bool:
        """Append one chunk; return False (and change nothing) if it won't fit.

        Pass ``data`` for real chunks, or ``size`` alone for virtual ones.
        """
        if data is not None:
            size = len(data)
        elif size is None:
            raise ValueError("either data or size is required")
        if size < 0:
            raise ValueError("chunk size must be non-negative")
        if not self.fits(size):
            return False
        self._records.append(ChunkRecord(fp, size, self._data_size))
        if self._data is not None:
            if data is None:
                raise ValueError("materialized writer requires chunk data")
            self._data.extend(data)
        self._data_size += size
        return True

    def seal(self, container_id: int) -> Container:
        """Freeze into an immutable :class:`Container` with its assigned ID."""
        data = bytes(self._data) if self._data is not None else None
        return Container(container_id, list(self._records), data, self.capacity)


class ContainerManager:
    """Writes/reads containers to/from the chunk repository (Section 3.3).

    Thin stateful façade: it allocates nothing itself but tracks I/O volume
    counters the server layer converts into simulated time.
    """

    def __init__(self, repository: "ChunkRepository",
                 registry: Optional[MetricsRegistry] = None) -> None:
        self.repository = repository
        self.containers_written = 0
        self.containers_read = 0
        self.bytes_written = 0
        self.bytes_read = 0
        registry = registry if registry is not None else get_registry()
        self._t_sealed = registry.counter(
            "container.sealed", "containers sealed and appended to the repository"
        ).labels()
        self._t_chunks = registry.counter(
            "container.chunks_packed", "chunks packed into sealed containers"
        ).labels()
        self._t_bytes_written = registry.counter(
            "container.bytes_written", "container capacity bytes appended"
        ).labels()
        self._t_fetched = registry.counter(
            "container.fetched", "containers read back from the repository"
        ).labels()
        self._t_bytes_read = registry.counter(
            "container.bytes_read", "container capacity bytes read back"
        ).labels()
        self._t_fill = registry.histogram(
            "container.fill_fraction", "payload fill fraction of sealed containers",
            buckets=(0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0),
        ).labels()

    def store(self, writer: ContainerWriter, affinity: Optional[int] = None) -> Container:
        """Seal an open container, append it to the repository, return it."""
        container_id = self.repository.allocate_id()
        container = writer.seal(container_id)
        self.repository.store(container, affinity=affinity)
        self.containers_written += 1
        self.bytes_written += container.capacity
        self._t_sealed.inc()
        self._t_chunks.inc(len(container.records))
        self._t_bytes_written.inc(container.capacity)
        self._t_fill.observe(writer.used_bytes / container.capacity)
        return container

    def fetch(self, container_id: int) -> Container:
        """Read a container back from the repository."""
        container = self.repository.fetch(container_id)
        self.containers_read += 1
        self.bytes_read += container.capacity
        self._t_fetched.inc()
        self._t_bytes_read.inc(container.capacity)
        return container
