"""Fixed-size random-access byte stores backing the disk index.

The disk index needs only three primitives — read a range, write a range,
report its size — so both an in-memory store (fast, for tests and scaled
benchmarks) and a real file-backed store (for the on-disk examples) satisfy
one small interface.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from pathlib import Path
from typing import Callable, Optional, Union

from repro.durability.fsshim import LocalFs, io_retry


class BlockStore(ABC):
    """A fixed-size byte store with range reads and writes."""

    @property
    @abstractmethod
    def size(self) -> int:
        """Total capacity in bytes."""

    @abstractmethod
    def read(self, offset: int, length: int) -> bytes:
        """Read ``length`` bytes at ``offset``."""

    @abstractmethod
    def write(self, offset: int, data: bytes) -> None:
        """Write ``data`` at ``offset``."""

    def _check_range(self, offset: int, length: int) -> None:
        if offset < 0 or length < 0 or offset + length > self.size:
            raise ValueError(
                f"range [{offset}, {offset + length}) outside store of size {self.size}"
            )


class MemoryBlockStore(BlockStore):
    """A zero-initialised in-memory store."""

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise ValueError("size must be positive")
        self._buf = bytearray(size)

    @property
    def size(self) -> int:
        return len(self._buf)

    def read(self, offset: int, length: int) -> bytes:
        self._check_range(offset, length)
        return bytes(self._buf[offset : offset + length])

    def write(self, offset: int, data: bytes) -> None:
        self._check_range(offset, len(data))
        self._buf[offset : offset + len(data)] = data


class SparseMemoryBlockStore(BlockStore):
    """An in-memory store that only materialises written pages.

    A disk index is mostly zeros until well filled; backing it with a
    page-sparse store lets the cluster experiments address multi-hundred-MB
    index geometries while allocating only the touched buckets.
    """

    PAGE = 4096

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise ValueError("size must be positive")
        self._size = size
        self._pages: dict = {}

    @property
    def size(self) -> int:
        return self._size

    def _page(self, number: int) -> bytearray:
        page = self._pages.get(number)
        if page is None:
            page = bytearray(self.PAGE)
            self._pages[number] = page
        return page

    def read(self, offset: int, length: int) -> bytes:
        self._check_range(offset, length)
        out = bytearray(length)
        pos = 0
        while pos < length:
            page_no, page_off = divmod(offset + pos, self.PAGE)
            take = min(self.PAGE - page_off, length - pos)
            page = self._pages.get(page_no)
            if page is not None:
                out[pos : pos + take] = page[page_off : page_off + take]
            pos += take
        return bytes(out)

    def write(self, offset: int, data: bytes) -> None:
        self._check_range(offset, len(data))
        pos = 0
        while pos < len(data):
            page_no, page_off = divmod(offset + pos, self.PAGE)
            take = min(self.PAGE - page_off, len(data) - pos)
            self._page(page_no)[page_off : page_off + take] = data[pos : pos + take]
            pos += take

    @property
    def resident_bytes(self) -> int:
        """Memory actually allocated (diagnostic)."""
        return len(self._pages) * self.PAGE


class FileBlockStore(BlockStore):
    """A store backed by a real sparse file.

    Created (and truncated to ``size``) if missing; reopened in place if
    present, so an on-disk index survives process restarts.

    I/O goes through an :class:`~repro.durability.fsshim.LocalFs` shim
    (injectable for fault testing); writes retry transient errors with
    backoff, reporting each retry via ``on_retry``.
    """

    def __init__(
        self,
        path: Union[str, Path],
        size: int,
        fs: Optional[LocalFs] = None,
        on_retry: Optional[Callable[[], None]] = None,
    ) -> None:
        if size <= 0:
            raise ValueError("size must be positive")
        self._path = Path(path)
        self._size = size
        self._fs = fs if fs is not None else LocalFs()
        self.on_retry = on_retry
        exists = self._path.exists()
        self._fh = open(self._path, "r+b" if exists else "w+b")
        current = os.fstat(self._fh.fileno()).st_size
        if current < size:
            self._fh.truncate(size)
        elif current > size:
            raise ValueError(
                f"{self._path} is {current} bytes, larger than requested size {size}"
            )

    @property
    def path(self) -> Path:
        return self._path

    @property
    def size(self) -> int:
        return self._size

    def read(self, offset: int, length: int) -> bytes:
        self._check_range(offset, length)
        data = self._fs.pread(self._fh, offset, length)
        if len(data) < length:  # sparse tail reads return short on some OSes
            data += b"\x00" * (length - len(data))
        return data

    def write(self, offset: int, data: bytes) -> None:
        self._check_range(offset, len(data))
        io_retry(
            lambda: self._fs.pwrite(self._fh, offset, data),
            on_retry=self.on_retry,
        )

    def flush(self) -> None:
        """Flush buffered writes to the OS."""
        self._fh.flush()

    def close(self) -> None:
        """Close the backing file; further access raises."""
        self._fh.close()

    def commit_to(self, path: Union[str, Path]) -> None:
        """Atomically move the backing file over ``path`` and reopen there.

        The successor-index dance of capacity scaling builds the doubled
        index in a sibling temporary file and then replaces the original in
        one rename, so a crash mid-scale leaves the original intact.
        """
        target = Path(path)
        self.flush()
        self._fh.close()
        os.replace(self._path, target)
        self._path = target
        self._fh = open(self._path, "r+b")

    def unlink(self) -> None:
        """Close and delete the backing file (abandoned scaling temps)."""
        self._fh.close()
        if self._path.exists():
            self._path.unlink()

    def __enter__(self) -> "FileBlockStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
