"""Locality-preserved caching (LPC), adopted from DDFS (Sections 2, 3.3).

When a fingerprint misses the cache but is found by a disk-index lookup,
*all* fingerprints of the container holding it are prefetched into the
cache, on the bet (underwritten by SISL layout) that neighbours in the
container will be accessed next.  One random disk I/O thus pre-pays many
future hits; DDFS reports >99 % of index lookups eliminated, and the paper's
restore path sees 99.3 %.

DEBAR uses LPC on the read/restore path; the DDFS baseline also uses it
inline on the write path.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, Optional

from repro.core.fingerprint import Fingerprint


class LocalityPreservedCache:
    """An LRU cache of container fingerprint groups.

    Capacity is counted in containers, matching how the paper sizes it
    (e.g. DDFS's 128 MB LPC = 16 containers' fingerprint metadata at 8 MB
    container size — the cache stores fingerprint groups, not payloads,
    so real memory use is far below ``capacity * container size``).
    """

    def __init__(self, capacity_containers: int) -> None:
        if capacity_containers < 1:
            raise ValueError("cache needs capacity for at least one container")
        self.capacity = capacity_containers
        self._groups: "OrderedDict[int, set]" = OrderedDict()
        self._fp_to_cid: Dict[Fingerprint, int] = {}
        self.hits = 0
        self.misses = 0
        self.prefetches = 0
        self.evictions = 0

    def lookup(self, fp: Fingerprint) -> Optional[int]:
        """Return the cached container ID for ``fp``, or None; updates LRU."""
        cid = self._fp_to_cid.get(fp)
        if cid is None:
            self.misses += 1
            return None
        self._groups.move_to_end(cid)
        self.hits += 1
        return cid

    def insert_container(self, container_id: int, fingerprints: Iterable[Fingerprint]) -> None:
        """Prefetch a container's whole fingerprint group (the LPC move)."""
        if container_id in self._groups:
            self._groups.move_to_end(container_id)
            return
        group = set(fingerprints)
        self._groups[container_id] = group
        for fp in group:
            self._fp_to_cid[fp] = container_id
        self.prefetches += 1
        while len(self._groups) > self.capacity:
            self._evict()

    def _evict(self) -> None:
        evicted_cid, group = self._groups.popitem(last=False)
        for fp in group:
            # A fingerprint can appear in one container only (dedup invariant),
            # but guard against having been re-pointed by a newer group.
            if self._fp_to_cid.get(fp) == evicted_cid:
                del self._fp_to_cid[fp]
        self.evictions += 1

    def __contains__(self, container_id: int) -> bool:
        return container_id in self._groups

    def __len__(self) -> int:
        return len(self._groups)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset_stats(self) -> None:
        self.hits = self.misses = self.prefetches = self.evictions = 0
