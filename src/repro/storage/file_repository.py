"""A chunk repository persisted as container files on a real filesystem.

One serialized file per container (``containers/0000000000a3.ctr``), the
container ID in the name.  Self-description (Section 3.4) does the rest:
reopening scans the directory, and the disk index can always be rebuilt
from the metadata sections alone.

Interface-compatible with :class:`~repro.storage.repository.ChunkRepository`
for everything the single-server stack uses (allocate/store/fetch/locate,
recovery iteration, byte accounting); containers are cached after first
read, so repeated restore fetches do not re-hit the filesystem.
"""

from __future__ import annotations

import errno
from pathlib import Path
from typing import Callable, Dict, Iterator, Optional, Tuple, Union

from repro.core.fingerprint import MAX_CONTAINER_ID
from repro.durability.errors import DiskFullError
from repro.durability.fsshim import LocalFs, io_retry
from repro.storage.container import CONTAINER_SIZE, Container

_SUFFIX = ".ctr"


class FileChunkRepository:
    """A single-node, on-disk container log."""

    def __init__(
        self,
        root: Union[str, Path],
        container_bytes: int = CONTAINER_SIZE,
        create: bool = True,
        fs: Optional[LocalFs] = None,
        on_retry: Optional[Callable[[], None]] = None,
    ) -> None:
        self.root = Path(root)
        self.container_bytes = container_bytes
        self.fs = fs if fs is not None else LocalFs()
        self.on_retry = on_retry
        if create:
            self.root.mkdir(parents=True, exist_ok=True)
        elif not self.root.is_dir():
            raise FileNotFoundError(f"no repository at {self.root}")
        self._cache: Dict[int, Container] = {}
        self._ids = sorted(
            int(p.stem, 16) for p in self.root.glob(f"*{_SUFFIX}")
        )
        self._next_id = (self._ids[-1] + 1) if self._ids else 0

    def _path(self, container_id: int) -> Path:
        return self.root / f"{container_id:012x}{_SUFFIX}"

    def path_for(self, container_id: int) -> Path:
        """On-disk path of a container image (scrub reads these raw)."""
        return self._path(container_id)

    def invalidate(self, container_id: int) -> None:
        """Drop a container from the read cache (after an on-disk repair)."""
        self._cache.pop(container_id, None)

    # -- the ChunkRepository interface ----------------------------------------
    def allocate_id(self) -> int:
        cid = self._next_id
        if cid > MAX_CONTAINER_ID:
            raise OverflowError("40-bit container ID space exhausted")
        self._next_id += 1
        return cid

    def store(self, container: Container, affinity: Optional[int] = None) -> int:
        if container.container_id in self:
            raise ValueError(f"container {container.container_id} already stored")
        path = self._path(container.container_id)
        blob = container.serialize()
        try:
            io_retry(lambda: self.fs.write_file(path, blob), on_retry=self.on_retry)
        except OSError as exc:
            if exc.errno == errno.ENOSPC:
                # Leave no torn container behind; the ID was consumed but the
                # file never landed, so callers can abort cleanly and resume.
                try:
                    if self.fs.exists(path):
                        self.fs.unlink(path)
                except OSError:
                    pass
                raise DiskFullError(
                    f"container {container.container_id}: {exc}", artifact="container"
                ) from exc
            raise
        self._ids.append(container.container_id)
        self._cache[container.container_id] = container
        return 0  # single node

    def fetch(self, container_id: int) -> Container:
        cached = self._cache.get(container_id)
        if cached is not None:
            return cached
        path = self._path(container_id)
        if not self.fs.exists(path):
            raise KeyError(f"container {container_id} not in repository")
        container = Container.deserialize(
            container_id, self.fs.read_file(path), capacity=self.container_bytes
        )
        self._cache[container_id] = container
        return container

    def remove(self, container_id: int) -> None:
        """Delete a container (garbage collection of dead containers)."""
        path = self._path(container_id)
        if not self.fs.exists(path):
            raise KeyError(f"container {container_id} not in repository")
        self.fs.unlink(path)
        self._cache.pop(container_id, None)
        self._ids.remove(container_id)

    def locate(self, container_id: int) -> int:
        if container_id not in self:
            raise KeyError(f"container {container_id} not in repository")
        return 0

    def __contains__(self, container_id: int) -> bool:
        return container_id in self._cache or self._path(container_id).exists()

    def __len__(self) -> int:
        return len(self._ids)

    def container_ids(self) -> list:
        return sorted(self._ids)

    def iter_containers(self) -> Iterator[Container]:
        for cid in self.container_ids():
            yield self.fetch(cid)

    def iter_index_entries(self) -> Iterator[Tuple[bytes, int]]:
        """(fingerprint, container ID) pairs — the recovery scan."""
        for container in self.iter_containers():
            for record in container.records:
                yield record.fingerprint, container.container_id

    @property
    def stored_chunk_bytes(self) -> int:
        return sum(c.data_bytes for c in self.iter_containers())
