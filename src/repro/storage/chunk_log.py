"""The dedup-1 on-disk chunk log (Sections 3.3 and 5.1).

During dedup-1 the File Store appends every chunk that survives the
preliminary filter as a ``<F, D(F)>`` group.  Dedup-2's chunk-storing pass
later replays the log *sequentially* — that sequential replay, at the log
disk's streaming rate, is what makes chunk storing fast and what preserves
SISL locality in the containers it fills.

Like containers, log records may be virtualized (size recorded, payload
regenerable) for fingerprint-stream workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.core.fingerprint import FINGERPRINT_SIZE, Fingerprint
from repro.telemetry.registry import MetricsRegistry, get_registry


@dataclass(frozen=True)
class LogRecord:
    """One ``<F, D(F)>`` group in the chunk log."""

    fingerprint: Fingerprint
    size: int
    data: Optional[bytes] = None

    @property
    def log_bytes(self) -> int:
        """On-disk footprint of the group (fingerprint + payload)."""
        return FINGERPRINT_SIZE + self.size


class ChunkLog:
    """An append-only log of chunk groups with sequential replay."""

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self._records: List[LogRecord] = []
        self._bytes = 0
        registry = registry if registry is not None else get_registry()
        self._t_appends = registry.counter(
            "chunk_log.appends", "chunk groups appended to the dedup-1 log"
        ).labels()
        self._t_bytes = registry.counter(
            "chunk_log.bytes_appended", "on-disk bytes appended to the dedup-1 log"
        ).labels()
        self._t_replays = registry.counter(
            "chunk_log.replays", "sequential replays consumed by chunk storing"
        ).labels()

    def append(self, fp: Fingerprint, data: Optional[bytes] = None, size: Optional[int] = None) -> None:
        """Append one group (pass ``data``, or ``size`` alone when virtual)."""
        if data is not None:
            size = len(data)
        elif size is None:
            raise ValueError("either data or size is required")
        if size < 0:
            raise ValueError("chunk size must be non-negative")
        record = LogRecord(fp, size, data)
        self._records.append(record)
        self._bytes += record.log_bytes
        self._t_appends.inc()
        self._t_bytes.inc(record.log_bytes)

    def replay(self) -> Iterator[LogRecord]:
        """Sequentially iterate all groups in append order."""
        self._t_replays.inc()
        return iter(self._records)

    def clear(self) -> None:
        """Truncate the log (after dedup-2 has consumed it)."""
        self._records.clear()
        self._bytes = 0

    @property
    def size_bytes(self) -> int:
        """Total on-disk bytes the log occupies (drives replay time)."""
        return self._bytes

    def __len__(self) -> int:
        return len(self._records)

    def __bool__(self) -> bool:
        return bool(self._records)
