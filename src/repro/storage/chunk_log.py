"""The dedup-1 on-disk chunk log (Sections 3.3 and 5.1).

During dedup-1 the File Store appends every chunk that survives the
preliminary filter as a ``<F, D(F)>`` group.  Dedup-2's chunk-storing pass
later replays the log *sequentially* — that sequential replay, at the log
disk's streaming rate, is what makes chunk storing fast and what preserves
SISL locality in the containers it fills.

Like containers, log records may be virtualized (size recorded, payload
regenerable) for fingerprint-stream workloads.
"""

from __future__ import annotations

import errno
import struct
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Optional, Tuple, Union

from repro.core.fingerprint import FINGERPRINT_SIZE, Fingerprint
from repro.durability.errors import DiskFullError
from repro.durability.framing import (
    KIND_CHUNK_LOG,
    Superblock,
    frame_record,
    scan_frames,
    unpack_superblock,
)
from repro.durability.fsshim import LocalFs, io_retry
from repro.telemetry.registry import MetricsRegistry, get_registry


@dataclass(frozen=True)
class LogRecord:
    """One ``<F, D(F)>`` group in the chunk log."""

    fingerprint: Fingerprint
    size: int
    data: Optional[bytes] = None

    @property
    def log_bytes(self) -> int:
        """On-disk footprint of the group (fingerprint + payload)."""
        return FINGERPRINT_SIZE + self.size


class ChunkLog:
    """An append-only log of chunk groups with sequential replay."""

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self._records: List[LogRecord] = []
        self._bytes = 0
        registry = registry if registry is not None else get_registry()
        self._t_appends = registry.counter(
            "chunk_log.appends", "chunk groups appended to the dedup-1 log"
        ).labels()
        self._t_bytes = registry.counter(
            "chunk_log.bytes_appended", "on-disk bytes appended to the dedup-1 log"
        ).labels()
        self._t_replays = registry.counter(
            "chunk_log.replays", "sequential replays consumed by chunk storing"
        ).labels()

    def append(self, fp: Fingerprint, data: Optional[bytes] = None, size: Optional[int] = None) -> None:
        """Append one group (pass ``data``, or ``size`` alone when virtual)."""
        if data is not None:
            size = len(data)
        elif size is None:
            raise ValueError("either data or size is required")
        if size < 0:
            raise ValueError("chunk size must be non-negative")
        record = LogRecord(fp, size, data)
        self._records.append(record)
        self._bytes += record.log_bytes
        self._t_appends.inc()
        self._t_bytes.inc(record.log_bytes)

    def replay(self) -> Iterator[LogRecord]:
        """Sequentially iterate all groups in append order."""
        self._t_replays.inc()
        return iter(self._records)

    def clear(self) -> None:
        """Truncate the log (after dedup-2 has consumed it)."""
        self._records.clear()
        self._bytes = 0

    @property
    def size_bytes(self) -> int:
        """Total on-disk bytes the log occupies (drives replay time)."""
        return self._bytes

    def __len__(self) -> int:
        return len(self._records)

    def __bool__(self) -> bool:
        return bool(self._records)


#: Framed log-record payload header: fingerprint, size, flags.
_LOG_RECORD = struct.Struct(f"<{FINGERPRINT_SIZE}sIB")
_FLAG_HAS_DATA = 0x01


class PersistentChunkLog(ChunkLog):
    """A :class:`ChunkLog` persisted to a framed, checksummed file.

    The file opens with a ``CLOG`` superblock whose generation bumps on
    every :meth:`clear`, followed by one CRC frame per ``<F, D(F)>``
    group.  Opening an existing log recovers it:

    * a torn tail (crash mid-append) is truncated back to the last intact
      frame (``recovered_torn_bytes``);
    * interior frames with CRC damage stay on disk for the scrubber but
      are excluded from replay (``corrupt_records``);
    * an unscannable region (frame boundaries lost) or a damaged
      superblock is moved aside to ``<path>.quarantine`` so nothing is
      silently destroyed (``quarantined_bytes``).

    Appends hit the file *before* memory, so an acknowledged group always
    survives a crash; ENOSPC surfaces as :class:`DiskFullError`.
    """

    def __init__(
        self,
        path: Union[str, Path],
        registry: Optional[MetricsRegistry] = None,
        fs: Optional[LocalFs] = None,
    ) -> None:
        super().__init__(registry)
        self.path = Path(path)
        self.fs = fs if fs is not None else LocalFs()
        self.generation = 1
        self.recovered_torn_bytes = 0
        self.corrupt_records: List[Tuple[int, bytes]] = []  # (offset, raw payload)
        self.quarantined_bytes = 0
        reg = registry if registry is not None else get_registry()
        self._t_retries = reg.counter(
            "io.retries", "transient I/O errors retried by the storage layer"
        ).labels()
        self._open()

    # -- recovery-aware open --------------------------------------------------
    def _superblock(self) -> bytes:
        return Superblock(KIND_CHUNK_LOG, self.generation).pack()

    def _quarantine(self, blob: bytes) -> None:
        qpath = self.path.with_suffix(self.path.suffix + ".quarantine")
        self.fs.append_file(qpath, blob)
        self.quarantined_bytes += len(blob)

    def _open(self) -> None:
        if not self.fs.exists(self.path):
            self.fs.write_file(self.path, self._superblock())
            return
        blob = self.fs.read_file(self.path)
        try:
            sb, off = unpack_superblock(blob, artifact=f"chunk log {self.path.name}")
            if sb.kind != KIND_CHUNK_LOG:
                raise ValueError(f"superblock kind {sb.kind!r} is not a chunk log")
        except Exception:
            # The whole file is unreadable without its superblock: move it
            # aside for forensics and start a fresh generation.
            self._quarantine(blob)
            self.fs.write_file(self.path, self._superblock())
            return
        self.generation = sb.generation
        scan = scan_frames(blob, off, artifact=f"chunk log {self.path.name}")
        for rec in scan.records:
            if rec.ok:
                self._load_payload(rec.payload)
            else:
                self.corrupt_records.append((rec.offset, rec.payload))
        if scan.stopped_reason is not None:
            # Frame boundaries are lost from here on; save the tail, then cut.
            self._quarantine(blob[scan.valid_end :])
            self.fs.truncate(self.path, scan.valid_end)
        elif scan.torn_bytes:
            self.recovered_torn_bytes = scan.torn_bytes
            self.fs.truncate(self.path, scan.valid_end)

    def _load_payload(self, payload: bytes) -> None:
        fp, size, flags = _LOG_RECORD.unpack_from(payload, 0)
        data = payload[_LOG_RECORD.size :] if flags & _FLAG_HAS_DATA else None
        # Reload bypasses the telemetry counters: these are not new appends.
        record = LogRecord(fp, size, data)
        self._records.append(record)
        self._bytes += record.log_bytes

    # -- the ChunkLog interface, file-first -----------------------------------
    def append(self, fp: Fingerprint, data: Optional[bytes] = None, size: Optional[int] = None) -> None:
        if data is not None:
            size = len(data)
        elif size is None:
            raise ValueError("either data or size is required")
        flags = _FLAG_HAS_DATA if data is not None else 0
        payload = _LOG_RECORD.pack(fp, size, flags) + (data or b"")
        frame = frame_record(payload)
        try:
            io_retry(
                lambda: self.fs.append_file(self.path, frame),
                on_retry=self._t_retries.inc,
            )
        except OSError as exc:
            if exc.errno == errno.ENOSPC:
                raise DiskFullError(
                    f"chunk log {self.path.name}: {exc}", artifact="chunk log"
                ) from exc
            raise
        super().append(fp, data=data, size=None if data is not None else size)

    def clear(self) -> None:
        # Rewriting the file would silently destroy any corrupt frames
        # still awaiting inspection; quarantine them first.
        for _offset, payload in self.corrupt_records:
            self._quarantine(payload)
        self.corrupt_records = []
        self.recovered_torn_bytes = 0
        self.generation += 1
        self.fs.write_file(self.path, self._superblock())
        super().clear()

    def rewrite_intact(self) -> int:
        """Rewrite the file from the intact in-memory records only.

        The scrubber's chunk-log repair: corrupt frames found at open are
        quarantined (their raw payloads appended to ``<path>.quarantine``)
        and dropped from the file, which is rebuilt as superblock + one
        fresh frame per surviving group.  Returns the number of frames
        dropped.  The generation is kept — the log's content (the groups
        awaiting dedup-2) is unchanged.
        """
        dropped = len(self.corrupt_records)
        for _offset, payload in self.corrupt_records:
            self._quarantine(payload)
        parts = [self._superblock()]
        for record in self._records:
            flags = _FLAG_HAS_DATA if record.data is not None else 0
            payload = _LOG_RECORD.pack(record.fingerprint, record.size, flags)
            parts.append(frame_record(payload + (record.data or b"")))
        self.fs.write_file(self.path, b"".join(parts))
        self.corrupt_records = []
        self.recovered_torn_bytes = 0
        return dropped
