"""The chunk repository: a global container-log storage pool (Section 3.4).

A repository is a set of storage nodes, each holding an append-only log of
fixed-size containers.  In a single-server DEBAR the repository lives on the
backup server's own block devices; in a cluster it spans many nodes with
potentially petabytes of capacity.  Container IDs are 40-bit and global, so
any backup server can fetch any container.

De-duplication makes chunks shared across streams spread over nodes, which
degrades restore locality; the repository therefore also implements the
defragmentation pass the paper sketches in Section 6.3, re-aggregating the
containers referenced by one stream onto one (or few) nodes.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, List, Optional

from repro.core.fingerprint import MAX_CONTAINER_ID
from repro.storage.container import Container


class StorageNode:
    """One node of the chunk repository: an append-only container log."""

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self._containers: Dict[int, Container] = {}
        self.bytes_appended = 0

    def append(self, container: Container) -> None:
        if container.container_id in self._containers:
            raise ValueError(f"container {container.container_id} already on node {self.node_id}")
        self._containers[container.container_id] = container
        self.bytes_appended += container.capacity

    def fetch(self, container_id: int) -> Container:
        try:
            return self._containers[container_id]
        except KeyError:
            raise KeyError(f"container {container_id} not on node {self.node_id}")

    def remove(self, container_id: int) -> Container:
        try:
            return self._containers.pop(container_id)
        except KeyError:
            raise KeyError(f"container {container_id} not on node {self.node_id}")

    def __contains__(self, container_id: int) -> bool:
        return container_id in self._containers

    def __len__(self) -> int:
        return len(self._containers)

    def container_ids(self) -> List[int]:
        return list(self._containers)


class ChunkRepository:
    """A cluster-wide pool of storage nodes with global container IDs.

    Placement: a container written with an ``affinity`` (the writing backup
    server's number) lands on ``node affinity % n_nodes``, which keeps one
    stream's containers together; without affinity, round-robin.
    """

    def __init__(self, n_nodes: int = 1) -> None:
        if n_nodes < 1:
            raise ValueError("repository needs at least one node")
        self.nodes = [StorageNode(i) for i in range(n_nodes)]
        self._location: Dict[int, int] = {}
        self._next_id = 0
        self._rr = 0

    # -- identity ------------------------------------------------------------
    def allocate_id(self) -> int:
        """Hand out the next 40-bit container ID."""
        cid = self._next_id
        if cid > MAX_CONTAINER_ID:
            raise OverflowError("40-bit container ID space exhausted")
        self._next_id += 1
        return cid

    # -- placement and I/O ------------------------------------------------------
    def store(self, container: Container, affinity: Optional[int] = None) -> int:
        """Append a sealed container; return the node that received it."""
        if container.container_id in self._location:
            raise ValueError(f"container {container.container_id} already stored")
        if affinity is None:
            node_idx = self._rr
            self._rr = (self._rr + 1) % len(self.nodes)
        else:
            node_idx = affinity % len(self.nodes)
        self.nodes[node_idx].append(container)
        self._location[container.container_id] = node_idx
        return node_idx

    def fetch(self, container_id: int) -> Container:
        """Read a container from whichever node holds it."""
        return self.nodes[self.locate(container_id)].fetch(container_id)

    def locate(self, container_id: int) -> int:
        """Node index holding a container (for network-hop cost accounting)."""
        try:
            return self._location[container_id]
        except KeyError:
            raise KeyError(f"container {container_id} not in repository")

    def __contains__(self, container_id: int) -> bool:
        return container_id in self._location

    def __len__(self) -> int:
        return len(self._location)

    @property
    def physical_bytes(self) -> int:
        """Fixed-size container bytes occupied across all nodes."""
        return len(self._location) * (
            next(iter(self.iter_containers())).capacity if self._location else 0
        )

    @property
    def stored_chunk_bytes(self) -> int:
        """Payload bytes actually described by stored containers."""
        return sum(c.data_bytes for c in self.iter_containers())

    def iter_containers(self) -> Iterator[Container]:
        """All containers, across all nodes."""
        for node in self.nodes:
            for cid in node.container_ids():
                yield node.fetch(cid)

    def iter_index_entries(self) -> Iterator[tuple]:
        """(fingerprint, container ID) pairs from every metadata section.

        This is the scan that rebuilds a corrupted disk index
        (Section 4.1's recovery path).
        """
        for container in self.iter_containers():
            for record in container.records:
                yield record.fingerprint, container.container_id

    # -- defragmentation (Section 6.3 extension) ---------------------------------
    def defragment(self, container_ids: Iterable[int], target_node: int) -> int:
        """Aggregate the given containers onto one node; return moves made.

        Models the paper's automatic defragmentation that keeps one stream's
        chunks on one or few storage nodes to retain read throughput.
        """
        if not 0 <= target_node < len(self.nodes):
            raise ValueError(f"no node {target_node}")
        moves = 0
        for cid in container_ids:
            src = self.locate(cid)
            if src == target_node:
                continue
            container = self.nodes[src].remove(cid)
            self.nodes[target_node].append(container)
            self._location[cid] = target_node
            moves += 1
        return moves

    def fragmentation(self, container_ids: Iterable[int]) -> float:
        """Fraction of a stream's containers *not* on its majority node."""
        counts: Dict[int, int] = defaultdict(int)
        total = 0
        for cid in container_ids:
            counts[self.locate(cid)] += 1
            total += 1
        if total == 0:
            return 0.0
        return 1.0 - max(counts.values()) / total
