"""A two-tier chunk repository: hot container files + a cold object store.

:class:`TieredChunkRepository` extends the on-disk
:class:`~repro.storage.file_repository.FileChunkRepository` with an
optional **cold tier** — any :class:`~repro.backend.base.StorageBackend`
holding sealed container images as immutable objects (one object per
container, same ``{id:012x}.ctr`` naming as the hot directory).

Tier membership is **derived, never persisted**: a container is *hot* if
its file exists (hot always wins), else *cold* if its object exists.
Migration therefore has no metadata transaction — put the object, verify
it, unlink the file — and a crash between those steps just leaves both
copies, which the next (idempotent) migration pass finishes.

Cold reads are ranged: the metadata section comes from a bounded prefix
GET (parsed by :meth:`Container.parse_meta`, cached in an injectable
:class:`~repro.backend.cache.MetaCache`), payloads from byte-range GETs —
``fetch`` pulls only the data section, never the zero padding, and
:meth:`verify_cold_payloads` scrubs a container with coalesced multi-range
GETs instead of downloading the image.

With no cold backend attached the class is behaviourally identical to its
parent — the vault constructs it unconditionally at zero cost.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.backend.base import ObjectMissingError, StorageBackend
from repro.backend.cache import MetaCache, NullMetaCache
from repro.durability.errors import CorruptionError, TornWriteError
from repro.durability.fsshim import LocalFs
from repro.storage.container import (
    CONTAINER_SIZE,
    ChunkRecord,
    Container,
    MetaPrefixShort,
    PayloadFault,
    verify_records,
)
from repro.storage.file_repository import FileChunkRepository
from repro.util.ranges import SegmentBuffer, Span, coalesce

PathLike = Union[str, Path]

TIER_HOT = "hot"
TIER_COLD = "cold"

#: First ranged read when parsing cold metadata: superblock + ~290 records.
#: One extra round trip only for containers with more records than that.
META_PREFIX_GUESS = 8192

#: Adjacent payload ranges closer than this are coalesced into one range
#: of a multi-range GET — fetching a small gap is cheaper than the
#: per-range overhead of splitting around it.
DEFAULT_RANGE_GAP = 4096


class TieredChunkRepository(FileChunkRepository):
    """A container log whose sealed containers may live on a cold backend."""

    def __init__(
        self,
        root: PathLike,
        container_bytes: int = CONTAINER_SIZE,
        create: bool = True,
        fs: Optional[LocalFs] = None,
        on_retry: Optional[Callable[[], None]] = None,
        cold: Optional[StorageBackend] = None,
        meta_cache: Optional[MetaCache] = None,
    ) -> None:
        super().__init__(
            root, container_bytes=container_bytes, create=create, fs=fs,
            on_retry=on_retry,
        )
        self.cold: Optional[StorageBackend] = None
        self.meta_cache: MetaCache = meta_cache or NullMetaCache()
        self._cold_ids: set = set()
        if cold is not None:
            self.attach_cold(cold, meta_cache=meta_cache)

    # -- cold-tier plumbing ---------------------------------------------------
    def attach_cold(
        self, backend: StorageBackend, meta_cache: Optional[MetaCache] = None
    ) -> None:
        """Wire a cold backend in (idempotent; rescans cold membership)."""
        self.cold = backend
        if meta_cache is not None:
            self.meta_cache = meta_cache
        self._cold_ids = {
            int(key[: -len(".ctr")], 16)
            for key in backend.list_keys()
            if key.endswith(".ctr")
        }
        if self._cold_ids:
            # Never re-issue an ID a migrated container already owns.
            self._next_id = max(self._next_id, max(self._cold_ids) + 1)

    @staticmethod
    def cold_key(container_id: int) -> str:
        return f"{container_id:012x}.ctr"

    def _hot(self, container_id: int) -> bool:
        return self.fs.exists(self._path(container_id))

    def tier_of(self, container_id: int) -> str:
        """``"hot"`` or ``"cold"`` (hot wins when both copies exist)."""
        if self._hot(container_id):
            return TIER_HOT
        if self.cold is not None and container_id in self._cold_ids:
            return TIER_COLD
        raise KeyError(f"container {container_id} not in repository")

    # -- membership overrides -------------------------------------------------
    def __contains__(self, container_id: int) -> bool:
        return (
            super().__contains__(container_id) or container_id in self._cold_ids
        )

    def __len__(self) -> int:
        return len(set(self._ids) | self._cold_ids)

    def container_ids(self) -> list:
        return sorted(set(self._ids) | self._cold_ids)

    # -- cold metadata --------------------------------------------------------
    def fetch_meta(
        self, container_id: int
    ) -> Tuple[List[ChunkRecord], int, bool]:
        """``(records, data_start, legacy)`` for a container on either tier.

        Hot containers parse from the (cached) file image; cold containers
        from a bounded prefix GET through the metadata cache — at most two
        range requests, and usually zero once the cache is warm.
        """
        if self._hot(container_id) or container_id in self._cache:
            c = self.fetch(container_id)
            return list(c.records), c.data_start, c.legacy
        meta = self.meta_cache.get(container_id)
        if meta is not None:
            return meta
        if self.cold is None or container_id not in self._cold_ids:
            raise KeyError(f"container {container_id} not in repository")
        parsed = self._parse_cold_meta(container_id)
        self.meta_cache.put(container_id, parsed)
        return parsed

    def _parse_cold_meta(
        self, container_id: int
    ) -> Tuple[List[ChunkRecord], int, bool]:
        """Parse a cold object's metadata section from ranged reads,
        bypassing the hot file and every cache — the read that proves the
        *object* is intact."""
        key = self.cold_key(container_id)
        prefix = self.cold.get_range(key, 0, META_PREFIX_GUESS)
        try:
            return Container.parse_meta(container_id, prefix)
        except MetaPrefixShort as exc:
            prefix = self.cold.get_range(key, 0, exc.needed)
            if len(prefix) < exc.needed:
                raise TornWriteError(
                    f"container {container_id}: cold object shorter than its "
                    "metadata section",
                    artifact="container", container_id=container_id,
                )
            return Container.parse_meta(container_id, prefix)

    # -- ranged reads ---------------------------------------------------------
    def read_range(self, container_id: int, offset: int, length: int) -> bytes:
        """One byte range of a container image (absolute image offsets)."""
        if self._hot(container_id):
            with open(self._path(container_id), "rb") as fh:
                return self.fs.pread(fh, offset, length)
        if self.cold is None or container_id not in self._cold_ids:
            raise KeyError(f"container {container_id} not in repository")
        return self.cold.get_range(self.cold_key(container_id), offset, length)

    def read_ranges(
        self, container_id: int, ranges: List[Tuple[int, int]]
    ) -> List[bytes]:
        """Several byte ranges of one container — a single backend request
        on a batching backend (the cold read planner's workhorse)."""
        if self._hot(container_id):
            out = []
            with open(self._path(container_id), "rb") as fh:
                for offset, length in ranges:
                    out.append(self.fs.pread(fh, offset, length))
            return out
        if self.cold is None or container_id not in self._cold_ids:
            raise KeyError(f"container {container_id} not in repository")
        return self.cold.get_ranges(self.cold_key(container_id), ranges)

    # -- whole-image access (replication, CONTAINER_FETCH, scrub repair) ------
    def read_image(self, container_id: int) -> bytes:
        """The full serialized image, byte-identical on either tier."""
        if self._hot(container_id):
            return self.fs.read_file(self._path(container_id))
        if self.cold is None or container_id not in self._cold_ids:
            raise KeyError(f"container {container_id} not in repository")
        return self.cold.get(self.cold_key(container_id))

    def write_image(self, container_id: int, blob: bytes) -> None:
        """Overwrite a container image in place on whichever tier holds it
        (repair path).  Caches are invalidated; a container neither tier
        holds lands hot (the rebuild-from-sources case)."""
        if self.cold is not None and container_id in self._cold_ids and not self._hot(container_id):
            self.cold.put(self.cold_key(container_id), blob)
        else:
            self.fs.write_file(self._path(container_id), blob)
            if container_id not in self._ids:
                self._ids.append(container_id)
        self.invalidate(container_id)

    def quarantine(self, container_id: int) -> str:
        """Move a damaged image aside (``…​.ctr.quarantine``) for forensics.

        Returns where the damaged bytes went.  Cold membership is kept so
        a follow-up :meth:`write_image` heals onto the same tier; until it
        does, fetches raise ``KeyError`` like any missing container.
        """
        path = self._path(container_id)
        if self.fs.exists(path):
            qpath = path.with_suffix(path.suffix + ".quarantine")
            self.fs.replace(path, qpath)
            self.invalidate(container_id)
            return str(qpath)
        if self.cold is not None and container_id in self._cold_ids:
            key = self.cold_key(container_id)
            qkey = key + ".quarantine"
            self.cold.put(qkey, self.cold.get(key))
            self.cold.delete(key)
            self.invalidate(container_id)
            return qkey
        raise KeyError(f"container {container_id} not in repository")

    def invalidate(self, container_id: int) -> None:
        super().invalidate(container_id)
        self.meta_cache.invalidate(container_id)

    # -- fetch / remove across tiers ------------------------------------------
    def fetch(self, container_id: int) -> Container:
        cached = self._cache.get(container_id)
        if cached is not None:
            return cached
        if self._hot(container_id):
            return super().fetch(container_id)
        if self.cold is None or container_id not in self._cold_ids:
            raise KeyError(f"container {container_id} not in repository")
        records, data_start, legacy = self.fetch_meta(container_id)
        data_len = max((r.offset + r.size for r in records), default=0)
        data = (
            self.cold.get_range(self.cold_key(container_id), data_start, data_len)
            if data_len else b""
        )
        if len(data) < data_len:
            raise TornWriteError(
                f"container {container_id}: cold data section cut short",
                artifact="container", container_id=container_id,
                offset=data_start,
            )
        container = Container(
            container_id, records, data, self.container_bytes, legacy=legacy
        )
        self._cache[container_id] = container
        return container

    def remove(self, container_id: int) -> None:
        removed = False
        if self._hot(container_id):
            super().remove(container_id)
            removed = True
        if self.cold is not None and container_id in self._cold_ids:
            try:
                self.cold.delete(self.cold_key(container_id))
            except ObjectMissingError:
                pass
            self._cold_ids.discard(container_id)
            self._cache.pop(container_id, None)
            removed = True
        self.meta_cache.invalidate(container_id)
        if not removed:
            raise KeyError(f"container {container_id} not in repository")

    def locate(self, container_id: int) -> int:
        if container_id not in self:
            raise KeyError(f"container {container_id} not in repository")
        return 0

    # -- migration ------------------------------------------------------------
    def migrate_to_cold(self, container_id: int) -> int:
        """Move one sealed container hot → cold; returns bytes migrated.

        Put, verify (object size + metadata CRC through a ranged read),
        *then* unlink — the hot copy only disappears once the cold copy
        has proven readable.  Already-cold containers are a no-op.
        """
        if self.cold is None:
            raise RuntimeError("no cold backend attached")
        path = self._path(container_id)
        if not self.fs.exists(path):
            if container_id in self._cold_ids:
                return 0
            raise KeyError(f"container {container_id} not in repository")
        blob = self.fs.read_file(path)
        key = self.cold_key(container_id)
        self.cold.put(key, blob)
        if self.cold.stat(key).size != len(blob):
            raise TornWriteError(
                f"container {container_id}: cold object size mismatch after put",
                artifact="container", container_id=container_id,
            )
        # Verify the *uploaded object's* metadata section round-trips (CRC
        # checked in parse — the hot file still exists here, so this must
        # not go through fetch_meta, which would read the hot copy) before
        # the hot copy is allowed to disappear.
        self._cold_ids.add(container_id)
        self.meta_cache.invalidate(container_id)
        try:
            parsed = self._parse_cold_meta(container_id)
        except Exception:
            self._cold_ids.discard(container_id)
            raise
        self.meta_cache.put(container_id, parsed)
        self.fs.unlink(path)
        if container_id in self._ids:
            self._ids.remove(container_id)
        # A migrated container should not pin its image in memory.
        self._cache.pop(container_id, None)
        return len(blob)

    # -- ranged scrub ---------------------------------------------------------
    def verify_cold_payloads(
        self, container_id: int, max_gap: int = DEFAULT_RANGE_GAP
    ) -> Tuple[List[PayloadFault], int]:
        """Deep-verify a cold container from byte-range reads.

        Adjacent payload ranges coalesce into one multi-range GET; the
        whole image is never downloaded (padding in particular).  Returns
        ``(faults, payload_bytes_read)`` — the same faults
        :meth:`Container.verify_payloads` would report on the full image.
        """
        records, data_start, _ = self.fetch_meta(container_id)
        spans = [
            Span(data_start + r.offset, r.size, r) for r in records if r.size
        ]
        buf = SegmentBuffer()
        groups = coalesce(spans, max_gap=max_gap)
        if groups:
            blobs = self.read_ranges(
                container_id, [(g.start, g.length) for g in groups]
            )
            for group, blob in zip(groups, blobs):
                buf.add(group.start, blob)
        faults = verify_records(
            records,
            lambda offset, size: buf.read(data_start + offset, size),
            base_offset=data_start,
        )
        return faults, buf.fetched_bytes

    # -- reporting ------------------------------------------------------------
    def tier_report(self) -> Dict[str, Dict[str, int]]:
        """Per-tier container counts and stored bytes (``tier-status``)."""
        hot_ids = [cid for cid in self._ids if self._hot(cid)]
        hot_bytes = sum(self.fs.file_size(self._path(cid)) for cid in hot_ids)
        cold_only = sorted(self._cold_ids - set(hot_ids))
        cold_bytes = 0
        if self.cold is not None:
            for cid in cold_only:
                try:
                    cold_bytes += self.cold.stat(self.cold_key(cid)).size
                except ObjectMissingError:
                    pass
        report = {
            TIER_HOT: {"containers": len(hot_ids), "bytes": hot_bytes},
            TIER_COLD: {"containers": len(cold_only), "bytes": cold_bytes},
        }
        status = getattr(self.meta_cache, "status", None)
        if callable(status):
            report["meta_cache"] = status()
        return report
