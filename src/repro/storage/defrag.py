"""Defragmentation (Section 6.3).

De-duplication shares chunks across streams and, as a side effect, spreads
a stream's chunks over many repository nodes, which erodes read
throughput.  The paper's remedy: "a defragmentation mechanism that
automatically aggregates file chunks to one or few storage nodes".

This module implements that mechanism as a policy object: given a stream's
fingerprint sequence and a fingerprint->container resolver, it computes the
stream's container set and fragmentation, and aggregates the stragglers
onto the stream's majority node when fragmentation crosses a threshold.
Moves cost one container read + one container write (+ a network transfer
between nodes), charged to a meter when one is supplied.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional

from repro.core.fingerprint import Fingerprint
from repro.simdisk.disk import DiskModel
from repro.simdisk.ledger import Meter
from repro.simdisk.network import NetworkModel
from repro.storage.repository import ChunkRepository


@dataclass
class DefragReport:
    """Outcome of one defragmentation pass."""

    containers: int = 0
    fragmentation_before: float = 0.0
    fragmentation_after: float = 0.0
    moves: int = 0
    bytes_moved: int = 0
    target_node: Optional[int] = None
    triggered: bool = False


class DefragmentationManager:
    """Aggregates a stream's containers onto its majority node."""

    def __init__(
        self,
        repository: ChunkRepository,
        threshold: float = 0.25,
    ) -> None:
        if not 0 <= threshold < 1:
            raise ValueError("threshold must be in [0, 1)")
        self.repository = repository
        self.threshold = threshold
        self.passes = 0
        self.total_moves = 0

    def stream_containers(
        self,
        fingerprints: Iterable[Fingerprint],
        resolve: Callable[[Fingerprint], Optional[int]],
    ) -> List[int]:
        """Distinct containers referenced by a stream, in first-use order."""
        seen: Dict[int, None] = {}
        for fp in fingerprints:
            cid = resolve(fp)
            if cid is None:
                raise KeyError(f"fingerprint {fp.hex()[:12]} not stored")
            if cid not in seen:
                seen[cid] = None
        return list(seen)

    def majority_node(self, container_ids: Iterable[int]) -> int:
        """The node already holding the largest share of the containers."""
        counts: Dict[int, int] = {}
        for cid in container_ids:
            node = self.repository.locate(cid)
            counts[node] = counts.get(node, 0) + 1
        if not counts:
            raise ValueError("stream references no containers")
        return max(counts, key=lambda n: (counts[n], -n))

    def run(
        self,
        fingerprints: Iterable[Fingerprint],
        resolve: Callable[[Fingerprint], Optional[int]],
        target_node: Optional[int] = None,
        meter: Optional[Meter] = None,
        disk: Optional[DiskModel] = None,
        network: Optional[NetworkModel] = None,
        force: bool = False,
    ) -> DefragReport:
        """One defragmentation pass over one stream.

        Aggregation happens only when fragmentation exceeds the threshold
        (or ``force``); it never splits containers — chunks shared with
        other streams ride along, which is why the paper aggregates to
        "one or few" nodes rather than guaranteeing perfect locality for
        every stream simultaneously.
        """
        report = DefragReport()
        cids = self.stream_containers(fingerprints, resolve)
        report.containers = len(cids)
        if not cids:
            return report
        report.fragmentation_before = self.repository.fragmentation(cids)
        if target_node is None:
            target_node = self.majority_node(cids)
        report.target_node = target_node
        if not force and report.fragmentation_before <= self.threshold:
            report.fragmentation_after = report.fragmentation_before
            return report

        to_move = [cid for cid in cids if self.repository.locate(cid) != target_node]
        capacity = 0
        for cid in to_move:
            capacity = self.repository.fetch(cid).capacity
            if meter is not None and disk is not None:
                meter.charge("defrag.read", disk.seq_read_time(capacity))
                meter.charge("defrag.write", disk.append_write_time(capacity))
                if network is not None:
                    meter.charge("defrag.network", network.transfer_time(capacity))
            report.bytes_moved += capacity
        report.moves = self.repository.defragment(to_move, target_node)
        report.fragmentation_after = self.repository.fragmentation(cids)
        report.triggered = True
        self.passes += 1
        self.total_moves += report.moves
        return report
