"""Storage substrates: block stores, containers, chunk repository, chunk log, LPC."""

from repro.storage.blockstore import (
    BlockStore,
    MemoryBlockStore,
    SparseMemoryBlockStore,
    FileBlockStore,
)
from repro.storage.container import (
    Container,
    ContainerManager,
    ContainerWriter,
    CONTAINER_SIZE,
)
from repro.storage.repository import ChunkRepository, StorageNode
from repro.storage.chunk_log import ChunkLog
from repro.storage.lpc import LocalityPreservedCache
from repro.storage.defrag import DefragmentationManager, DefragReport

__all__ = [
    "BlockStore",
    "MemoryBlockStore",
    "SparseMemoryBlockStore",
    "FileBlockStore",
    "Container",
    "ContainerManager",
    "ContainerWriter",
    "CONTAINER_SIZE",
    "ChunkRepository",
    "StorageNode",
    "ChunkLog",
    "LocalityPreservedCache",
    "DefragmentationManager",
    "DefragReport",
]
